//! The wire protocol: compact length-prefixed binary frames.
//!
//! ## Framing
//!
//! Every frame is an 18-byte header followed by a payload:
//!
//! ```text
//! magic      u32  0x694E614E ("iNaN")
//! version    u8   5
//! frame type u8   see the FT_* constants
//! request id u64  echoed verbatim in the reply
//! payload    u32  payload length in bytes
//! ```
//!
//! All integers are big-endian; floats travel as IEEE-754 bit patterns
//! (`f64::to_bits`). The request id is chosen by the client and echoed
//! by the server, which is what makes pipelining work: a client may
//! write any number of requests before reading replies, and matches
//! them back up by id (the server also answers strictly in request
//! order per connection).
//!
//! ## Version 2: shards
//!
//! One server hosts many independent atlas shards
//! ([`inano_service::ShardRegistry`]); v2 routes every engine-touching
//! request to one of them. `QueryBatch`, `Resolve`, `Stats` and
//! `Epoch` lead their payload with a `u16` shard id; for `Stats` and
//! `Epoch` the id is optional on the wire — an empty payload means
//! shard 0, so a v2 request written without a shard id keeps the
//! single-atlas semantics. (The version byte is still checked first:
//! an actual v1 header is a fatal `BadVersion`, as always.)
//! Naming a shard the server does not
//! host is a per-frame [`ErrorCode::UnknownShard`] fault, never a
//! connection loss. `ListShards`/`ShardsReply` enumerate what the
//! server hosts ([`WireShardInfo`]: id, epoch, day). v2 also ships the
//! raw log₂ latency buckets inside `StatsReply` so a fleet aggregator
//! can merge histograms instead of averaging percentiles.
//!
//! ## Version 3: atlas dissemination
//!
//! v3 adds the fetch side of §5's dissemination story, so any server
//! can stand in as an atlas mirror (shard-scoped, like every other
//! engine-touching request):
//!
//! * `AtlasHead` → `AtlasHeadReply` names the shard's newest full
//!   version ([`inano_core::AtlasVersion`]: day, content `epoch_tag`,
//!   body length, chunk size);
//! * `FetchFullChunk { shard, epoch_tag, idx }` → `ChunkReply` carries
//!   one checksummed chunk. The request names the tag it is fetching:
//!   if the shard swapped generations mid-fetch the server answers a
//!   typed [`ErrorCode::VersionRaced`] fault — re-read the head and
//!   restart — instead of silently splicing two generations;
//! * `FetchDelta { shard, have_day }` → `DeltaReply` offers the
//!   retained daily delta leaving `have_day` (if any), whose body moves
//!   through `FetchDeltaChunk` → `ChunkReply` the same way.
//!
//! Chunk sizes are derived from the server's own [`Limits`]
//! ([`chunk_size_for`]), so a `ChunkReply` payload never exceeds
//! `max_frame_bytes` — an atlas bigger than one frame simply arrives
//! as more chunks. A stale chunk index is a typed
//! [`ErrorCode::ChunkOutOfRange`] fault; none of these ever cost the
//! connection.
//!
//! ## Version 4: observability
//!
//! v4 is strictly additive — every v3 frame encodes byte-identically,
//! so receivers accept any version in
//! [`MIN_VERSION`]`..=`[`VERSION`] and a v3 peer keeps working
//! untouched. Two additions:
//!
//! * `Metrics` → `MetricsReply` dumps the server's whole
//!   [`inano_obs::MetricsRegistry`] as stable name/value pairs
//!   (counters, gauges, raw log₂ histograms — the scrape plane's wire
//!   form; merge semantics live on [`inano_obs::MetricsDump`]).
//! * **Request tracing**: a client may set [`TRACE_FLAG`] (bit 63) on
//!   its request id. Ids are client-chosen and echoed verbatim, so the
//!   flag rides the existing header with zero new bytes; sequential
//!   clients never collide with it. For a flagged request whose reply
//!   is not `Error`, the server writes a `TraceReply` *trailer* frame
//!   (same id, [`inano_obs::TraceTimings`]: decode → queue → engine →
//!   encode µs) immediately after the main reply. Error replies carry
//!   no trailer — both sides apply that rule, so pipelining stays
//!   aligned.
//!
//! ## Version 5: the event journal
//!
//! v5 is again strictly additive (the accept window stays
//! [`MIN_VERSION`]`..=`[`VERSION`]; every v3/v4 frame encodes
//! byte-identically). One addition: `Events { since_seq }` →
//! `EventsReply` pages the server's [`inano_obs::EventJournal`] — the
//! typed, monotonically sequenced ring behind the counters
//! (generation swaps, delta applications, full resyncs, overload
//! episodes, connection churn, mirror refresh failures). The reply
//! carries the events at or past `since_seq` in ascending `seq` order,
//! plus `lost` (requested sequence numbers the bounded ring had
//! already overwritten — overflow is *reported*, never silent) and
//! `next_seq` (the cursor to poll with). Event kinds travel as stable
//! u8 codes ([`inano_obs::EventKind::code`]); a code this build
//! doesn't know is skipped at decode, not a fault, so newer servers
//! can add kinds without breaking older scrapers.
//!
//! ## Error handling
//!
//! Decoding distinguishes two failure severities, and the distinction
//! is load-bearing for pipelining:
//!
//! * **fatal** ([`ReadError::Fatal`]) — the stream can no longer be
//!   trusted to be frame-aligned (bad magic, bad version, a declared
//!   payload length over the limit). The server replies with one
//!   [`Frame::Error`] (request id 0) and closes the connection.
//! * **per-frame** ([`ReadError::Frame`]) — the header was sound and
//!   the payload was fully consumed, but its contents don't parse (or a
//!   batch exceeds [`Limits::max_batch`]). The server replies with a
//!   typed [`Frame::Error`] carrying the request id and keeps serving
//!   the connection.
//!
//! Error *codes* live in [`inano_model::ErrorCode`] so the engine's own
//! `ModelError`s cross the wire losslessly typed.

use inano_core::{AtlasVersion, DeltaHandle, PredictedPath, Resolution, DEFAULT_CHUNK_SIZE};
use inano_model::{Asn, ClusterId, ErrorCode, Ipv4, LatencyMs, LossRate, ModelError, PrefixId};
use inano_obs::{Event, EventKind, EventsPage, MetricValue, MetricsDump, TraceTimings};
use inano_service::{ServiceStats, ShardId};
use std::io::{self, Read, Write};
use std::time::Instant;

/// `"iNaN"` in ASCII.
pub const MAGIC: u32 = 0x694E_614E;
/// Current protocol version (5: the event journal — `Events` pages).
pub const VERSION: u8 = 5;
/// Oldest version this receiver still accepts. v4 and v5 added only
/// new frame types, so every v3/v4 frame is bit-identical under v5 and
/// refusing one would break working peers for nothing.
pub const MIN_VERSION: u8 = 3;
/// Most log₂ latency buckets accepted in one histogram on the wire —
/// shared by `StatsReply` and `MetricsReply` (the engine ships 40;
/// bucket index feeds a `1 << i`, so a foreign histogram must not be
/// allowed to claim thousands).
pub const MAX_BUCKETS: usize = 64;
/// Fixed frame-header size in bytes.
pub const HEADER_BYTES: usize = 18;
/// Most entries accepted in one `MetricsReply` (a serve process has a
/// few dozen per shard; thousands of shards is beyond this protocol).
pub const MAX_METRICS_ENTRIES: usize = 16_384;
/// Most events in one `EventsReply` — comfortably above any journal
/// ring capacity in use, low enough that a hostile count can't force a
/// large allocation.
pub const MAX_EVENTS_ENTRIES: usize = 4096;

/// Bit 63 of the request id: the client asks for a [`Frame::TraceReply`]
/// trailer after the reply. Servers echo the id verbatim — flag
/// included — which keeps pipelined id-matching working for tracing
/// and non-tracing requests alike.
///
/// **Wire contract: bit 63 is reserved.** It is a transport signal,
/// not id space — a client that lets its id counter grow into bit 63
/// would silently start requesting traces and desynchronise its own
/// pipeline on the surprise `TraceReply` trailers. Id generators must
/// mask the bit out (ours wrap back to 1; see
/// `NetClient`/`UdpQuerier`), and only the tracing entry points may
/// set it deliberately.
pub const TRACE_FLAG: u64 = 1 << 63;

pub const FT_PING: u8 = 0x01;
pub const FT_QUERY_BATCH: u8 = 0x02;
pub const FT_RESOLVE: u8 = 0x03;
pub const FT_STATS: u8 = 0x04;
pub const FT_EPOCH: u8 = 0x05;
pub const FT_LIST_SHARDS: u8 = 0x06;
pub const FT_ATLAS_HEAD: u8 = 0x07;
pub const FT_FETCH_FULL_CHUNK: u8 = 0x08;
pub const FT_FETCH_DELTA: u8 = 0x09;
pub const FT_FETCH_DELTA_CHUNK: u8 = 0x0A;
pub const FT_METRICS: u8 = 0x0B;
pub const FT_EVENTS: u8 = 0x0C;
pub const FT_PONG: u8 = 0x81;
pub const FT_PATH_BATCH: u8 = 0x82;
pub const FT_RESOLVE_REPLY: u8 = 0x83;
pub const FT_STATS_REPLY: u8 = 0x84;
pub const FT_EPOCH_REPLY: u8 = 0x85;
pub const FT_SHARDS_REPLY: u8 = 0x86;
pub const FT_ATLAS_HEAD_REPLY: u8 = 0x87;
pub const FT_CHUNK_REPLY: u8 = 0x88;
pub const FT_DELTA_REPLY: u8 = 0x89;
pub const FT_TRACE_REPLY: u8 = 0x8A;
pub const FT_METRICS_REPLY: u8 = 0x8B;
pub const FT_EVENTS_REPLY: u8 = 0x8C;
pub const FT_ERROR: u8 = 0xEE;

/// Fixed `ChunkReply` payload overhead: chunk index (4) + checksum (8)
/// + byte-count register (4).
pub const CHUNK_WIRE_OVERHEAD: u32 = 16;

/// The chunk size a sender bounded by `limits` serves atlas bodies in:
/// the in-process default, shrunk until one chunk (plus its framing)
/// always fits `max_frame_bytes`.
pub fn chunk_size_for(limits: &Limits) -> u32 {
    DEFAULT_CHUNK_SIZE
        .min(limits.max_frame_bytes.saturating_sub(CHUNK_WIRE_OVERHEAD))
        .max(1)
}

/// Receiver-side protocol limits. Senders should stay within the
/// defaults; a server may advertise different ones out of band.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Largest accepted payload, bytes. A header declaring more is a
    /// fatal framing error (the receiver refuses to buffer it).
    pub max_frame_bytes: u32,
    /// Most pairs in one `QueryBatch` / results in one `PathBatch`.
    pub max_batch: u32,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_frame_bytes: 1 << 20,
            max_batch: 4096,
        }
    }
}

/// A typed fault: stable code plus a short human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFault {
    pub code: ErrorCode,
    pub message: String,
}

impl WireFault {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireFault {
        WireFault {
            code,
            message: message.into(),
        }
    }
}

impl From<&ModelError> for WireFault {
    fn from(e: &ModelError) -> WireFault {
        WireFault {
            code: ErrorCode::from(e),
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// A predicted path in wire form — everything `PredictedPath` carries,
/// with ids flattened to raw `u32`s.
#[derive(Clone, Debug, PartialEq)]
pub struct WirePath {
    pub fwd_clusters: Vec<u32>,
    pub rev_clusters: Vec<u32>,
    pub fwd_as: Vec<u32>,
    pub rev_as: Vec<u32>,
    pub rtt_ms: f64,
    pub loss: f64,
}

impl From<&PredictedPath> for WirePath {
    fn from(p: &PredictedPath) -> WirePath {
        WirePath {
            fwd_clusters: p.fwd_clusters.iter().map(|c| c.raw()).collect(),
            rev_clusters: p.rev_clusters.iter().map(|c| c.raw()).collect(),
            fwd_as: p.fwd_as_path.iter().map(|a| a.raw()).collect(),
            rev_as: p.rev_as_path.iter().map(|a| a.raw()).collect(),
            rtt_ms: p.rtt.ms(),
            loss: p.loss.rate(),
        }
    }
}

impl WirePath {
    /// Reconstruct the library-side type (AS prepending was already
    /// collapsed on the server, so `AsPath::new` is the identity here).
    pub fn into_predicted(self) -> PredictedPath {
        PredictedPath {
            fwd_clusters: self.fwd_clusters.into_iter().map(ClusterId::new).collect(),
            rev_clusters: self.rev_clusters.into_iter().map(ClusterId::new).collect(),
            fwd_as_path: self.fwd_as.into_iter().map(Asn::new).collect(),
            rev_as_path: self.rev_as.into_iter().map(Asn::new).collect(),
            rtt: LatencyMs::new(self.rtt_ms),
            loss: LossRate::new(self.loss),
        }
    }
}

/// An endpoint resolution in wire form (see [`inano_core::Resolution`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireResolution {
    pub prefix: u32,
    pub cluster: u32,
    pub origin_as: Option<u32>,
    pub cluster_as: Option<u32>,
    pub refined_providers: bool,
}

impl From<&Resolution> for WireResolution {
    fn from(r: &Resolution) -> WireResolution {
        WireResolution {
            prefix: r.prefix.raw(),
            cluster: r.cluster.raw(),
            origin_as: r.origin_as.map(|a| a.raw()),
            cluster_as: r.cluster_as.map(|a| a.raw()),
            refined_providers: r.refined_providers,
        }
    }
}

impl WireResolution {
    pub fn into_resolution(self) -> Resolution {
        Resolution {
            prefix: PrefixId::new(self.prefix),
            cluster: ClusterId::new(self.cluster),
            origin_as: self.origin_as.map(Asn::new),
            cluster_as: self.cluster_as.map(Asn::new),
            refined_providers: self.refined_providers,
        }
    }
}

/// One hosted shard in a `ShardsReply`: its id and the `(epoch, day)`
/// of its serving generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireShardInfo {
    pub shard: u16,
    pub epoch: u64,
    pub day: u32,
}

/// Engine counters in wire form (see [`inano_service::ServiceStats`]).
#[derive(Clone, Debug, PartialEq)]
pub struct WireStats {
    pub queries: u64,
    pub errors: u64,
    pub qps: f64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub cache_hit_rate: f64,
    pub swaps: u64,
    pub epoch: u64,
    pub day: u32,
    pub workers: u32,
    /// Raw log₂ latency-bucket counts. Mergeable across engines by
    /// element-wise sum (see [`inano_service::quantile_from_counts`]),
    /// which scalar percentiles are not.
    pub latency_buckets: Vec<u64>,
}

impl From<&ServiceStats> for WireStats {
    fn from(s: &ServiceStats) -> WireStats {
        WireStats {
            queries: s.queries,
            errors: s.errors,
            qps: s.qps,
            p50_us: s.p50_us,
            p99_us: s.p99_us,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            cache_evictions: s.cache_evictions,
            cache_hit_rate: s.cache_hit_rate,
            swaps: s.swaps,
            epoch: s.epoch,
            day: s.day,
            workers: s.workers as u32,
            latency_buckets: s.latency_buckets.clone(),
        }
    }
}

impl WireStats {
    /// Back to the library-side type, so a fleet aggregator can feed
    /// remote snapshots into [`ServiceStats::aggregate`] (which merges
    /// the raw buckets exactly, instead of averaging percentiles).
    pub fn to_service_stats(&self) -> ServiceStats {
        ServiceStats {
            queries: self.queries,
            errors: self.errors,
            qps: self.qps,
            p50_us: self.p50_us,
            p99_us: self.p99_us,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            cache_evictions: self.cache_evictions,
            cache_hit_rate: self.cache_hit_rate,
            swaps: self.swaps,
            epoch: self.epoch,
            day: self.day,
            workers: self.workers as usize,
            latency_buckets: self.latency_buckets.clone(),
        }
    }
}

/// One protocol frame (request or reply), minus the request id that
/// travels in the header.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    Ping,
    Pong,
    QueryBatch {
        shard: ShardId,
        pairs: Vec<(Ipv4, Ipv4)>,
    },
    PathBatch {
        results: Vec<Result<WirePath, WireFault>>,
    },
    Resolve {
        shard: ShardId,
        ip: Ipv4,
    },
    ResolveReply {
        resolution: WireResolution,
    },
    Stats {
        shard: ShardId,
    },
    StatsReply {
        stats: WireStats,
    },
    Epoch {
        shard: ShardId,
    },
    EpochReply {
        epoch: u64,
        day: u32,
    },
    ListShards,
    ShardsReply {
        shards: Vec<WireShardInfo>,
    },
    /// What is the newest full atlas this shard serves?
    AtlasHead {
        shard: ShardId,
    },
    AtlasHeadReply {
        version: AtlasVersion,
    },
    /// One chunk of the full body whose head named `epoch_tag`. A
    /// server that has moved on answers a typed `VersionRaced` fault.
    FetchFullChunk {
        shard: ShardId,
        epoch_tag: u64,
        idx: u32,
    },
    /// Is there a retained daily delta leaving `have_day`?
    FetchDelta {
        shard: ShardId,
        have_day: u32,
    },
    DeltaReply {
        handle: Option<DeltaHandle>,
    },
    /// One chunk of the delta body leaving `from_day`.
    FetchDeltaChunk {
        shard: ShardId,
        from_day: u32,
        idx: u32,
    },
    /// One checksummed body chunk (full or delta — the client knows
    /// which it asked for; the echoed index pins it to the request).
    ChunkReply {
        idx: u32,
        crc: u64,
        bytes: Vec<u8>,
    },
    /// Dump the server-wide metrics registry (v4; not shard-scoped —
    /// the registry's names carry the shard).
    Metrics,
    MetricsReply {
        dump: MetricsDump,
    },
    /// Page the server-wide event journal from `since_seq` (v5; not
    /// shard-scoped — an event's detail names its shard).
    Events {
        since_seq: u64,
    },
    EventsReply {
        page: EventsPage,
    },
    /// The timing trailer a [`TRACE_FLAG`]ged request earns, written
    /// immediately after its (non-`Error`) main reply under the same
    /// request id.
    TraceReply {
        timings: TraceTimings,
    },
    Error {
        fault: WireFault,
    },
}

/// Why a frame could not be read. See the module docs for how the two
/// decode severities drive connection handling.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying stream failed (including EOF mid-frame).
    Io(io::Error),
    /// Stream desynchronised; answer once and close.
    Fatal(WireFault),
    /// This frame is bad but the stream is still aligned.
    Frame { request_id: u64, fault: WireFault },
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

// ---- primitive writers/readers -------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_vec_u32(buf: &mut Vec<u8>, v: &[u32]) {
    // Paths are graph-diameter-bounded in practice; if one ever
    // exceeds the u16 length prefix, truncate count *and* elements
    // together so the frame stays well-formed instead of corrupting
    // the stream with a wrapped count.
    let n = v.len().min(u16::MAX as usize);
    debug_assert_eq!(n, v.len(), "path far beyond wire bounds");
    put_u16(buf, n as u16);
    for &x in &v[..n] {
        put_u32(buf, x);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    // Messages are diagnostics; truncate rather than fail at a char
    // boundary safe cut.
    let bytes = s.as_bytes();
    let mut n = bytes.len().min(512);
    while n > 0 && !s.is_char_boundary(n) {
        n -= 1;
    }
    put_u16(buf, n as u16);
    buf.extend_from_slice(&bytes[..n]);
}

fn put_fault(buf: &mut Vec<u8>, fault: &WireFault) {
    put_u16(buf, fault.code.as_u16());
    put_str(buf, &fault.message);
}

/// A bounds-checked big-endian payload cursor.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// The `u16` shard id leading a shard-routable request, or shard 0
    /// when the payload carries no id at all (the v1 encoding of
    /// `Stats`/`Epoch`): the shard id is optional, defaulting to the
    /// shard that keeps single-atlas semantics.
    fn shard_or_default(&mut self) -> Result<ShardId, WireFault> {
        if self.remaining() == 0 {
            return Ok(ShardId::DEFAULT);
        }
        Ok(ShardId(self.u16()?))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireFault> {
        if self.buf.len() - self.at < n {
            return Err(WireFault::new(
                ErrorCode::Malformed,
                format!("payload truncated at byte {}", self.at),
            ));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireFault> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireFault> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireFault> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireFault> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireFault> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn vec_u32(&mut self) -> Result<Vec<u32>, WireFault> {
        let n = self.u16()? as usize;
        (0..n).map(|_| self.u32()).collect()
    }

    fn string(&mut self) -> Result<String, WireFault> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| WireFault::new(ErrorCode::Malformed, "message is not UTF-8"))
    }

    fn fault(&mut self) -> Result<WireFault, WireFault> {
        let raw = self.u16()?;
        let code = ErrorCode::from_u16(raw)
            .ok_or_else(|| WireFault::new(ErrorCode::Malformed, format!("unknown code {raw}")))?;
        let message = self.string()?;
        Ok(WireFault { code, message })
    }

    fn done(&self) -> Result<(), WireFault> {
        if self.at != self.buf.len() {
            return Err(WireFault::new(
                ErrorCode::Malformed,
                format!("{} trailing bytes", self.buf.len() - self.at),
            ));
        }
        Ok(())
    }
}

// ---- frame codec ----------------------------------------------------

impl Frame {
    pub fn frame_type(&self) -> u8 {
        match self {
            Frame::Ping => FT_PING,
            Frame::Pong => FT_PONG,
            Frame::QueryBatch { .. } => FT_QUERY_BATCH,
            Frame::PathBatch { .. } => FT_PATH_BATCH,
            Frame::Resolve { .. } => FT_RESOLVE,
            Frame::ResolveReply { .. } => FT_RESOLVE_REPLY,
            Frame::Stats { .. } => FT_STATS,
            Frame::StatsReply { .. } => FT_STATS_REPLY,
            Frame::Epoch { .. } => FT_EPOCH,
            Frame::EpochReply { .. } => FT_EPOCH_REPLY,
            Frame::ListShards => FT_LIST_SHARDS,
            Frame::ShardsReply { .. } => FT_SHARDS_REPLY,
            Frame::AtlasHead { .. } => FT_ATLAS_HEAD,
            Frame::AtlasHeadReply { .. } => FT_ATLAS_HEAD_REPLY,
            Frame::FetchFullChunk { .. } => FT_FETCH_FULL_CHUNK,
            Frame::FetchDelta { .. } => FT_FETCH_DELTA,
            Frame::DeltaReply { .. } => FT_DELTA_REPLY,
            Frame::FetchDeltaChunk { .. } => FT_FETCH_DELTA_CHUNK,
            Frame::ChunkReply { .. } => FT_CHUNK_REPLY,
            Frame::Metrics => FT_METRICS,
            Frame::MetricsReply { .. } => FT_METRICS_REPLY,
            Frame::Events { .. } => FT_EVENTS,
            Frame::EventsReply { .. } => FT_EVENTS_REPLY,
            Frame::TraceReply { .. } => FT_TRACE_REPLY,
            Frame::Error { .. } => FT_ERROR,
        }
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Ping | Frame::Pong | Frame::ListShards | Frame::Metrics => {}
            Frame::Stats { shard } | Frame::Epoch { shard } => put_u16(buf, shard.raw()),
            Frame::QueryBatch { shard, pairs } => {
                put_u16(buf, shard.raw());
                put_u32(buf, pairs.len() as u32);
                for &(s, d) in pairs {
                    put_u32(buf, s.0);
                    put_u32(buf, d.0);
                }
            }
            Frame::PathBatch { results } => {
                put_u32(buf, results.len() as u32);
                for r in results {
                    match r {
                        Ok(p) => {
                            buf.push(0);
                            put_f64(buf, p.rtt_ms);
                            put_f64(buf, p.loss);
                            put_vec_u32(buf, &p.fwd_clusters);
                            put_vec_u32(buf, &p.rev_clusters);
                            put_vec_u32(buf, &p.fwd_as);
                            put_vec_u32(buf, &p.rev_as);
                        }
                        Err(fault) => {
                            buf.push(1);
                            put_fault(buf, fault);
                        }
                    }
                }
            }
            Frame::Resolve { shard, ip } => {
                put_u16(buf, shard.raw());
                put_u32(buf, ip.0);
            }
            Frame::ResolveReply { resolution } => {
                put_u32(buf, resolution.prefix);
                put_u32(buf, resolution.cluster);
                let flags = resolution.origin_as.is_some() as u8
                    | (resolution.cluster_as.is_some() as u8) << 1
                    | (resolution.refined_providers as u8) << 2;
                buf.push(flags);
                if let Some(a) = resolution.origin_as {
                    put_u32(buf, a);
                }
                if let Some(a) = resolution.cluster_as {
                    put_u32(buf, a);
                }
            }
            Frame::StatsReply { stats } => {
                put_u64(buf, stats.queries);
                put_u64(buf, stats.errors);
                put_f64(buf, stats.qps);
                put_u64(buf, stats.p50_us);
                put_u64(buf, stats.p99_us);
                put_u64(buf, stats.cache_hits);
                put_u64(buf, stats.cache_misses);
                put_u64(buf, stats.cache_evictions);
                put_f64(buf, stats.cache_hit_rate);
                put_u64(buf, stats.swaps);
                put_u64(buf, stats.epoch);
                put_u32(buf, stats.day);
                put_u32(buf, stats.workers);
                // Histograms are short (40 buckets today); truncating
                // at the receiver-side cap keeps every encoded frame
                // decodable.
                let n = stats.latency_buckets.len().min(MAX_BUCKETS);
                debug_assert_eq!(
                    n,
                    stats.latency_buckets.len(),
                    "histogram beyond wire bounds"
                );
                put_u16(buf, n as u16);
                for &c in &stats.latency_buckets[..n] {
                    put_u64(buf, c);
                }
            }
            Frame::EpochReply { epoch, day } => {
                put_u64(buf, *epoch);
                put_u32(buf, *day);
            }
            Frame::ShardsReply { shards } => {
                let n = shards.len().min(u16::MAX as usize);
                debug_assert_eq!(n, shards.len(), "shard count beyond wire bounds");
                put_u16(buf, n as u16);
                for s in &shards[..n] {
                    put_u16(buf, s.shard);
                    put_u64(buf, s.epoch);
                    put_u32(buf, s.day);
                }
            }
            Frame::AtlasHead { shard } => put_u16(buf, shard.raw()),
            Frame::AtlasHeadReply { version } => {
                put_u32(buf, version.day);
                put_u64(buf, version.epoch_tag);
                put_u64(buf, version.full_len);
                put_u32(buf, version.chunk_size);
            }
            Frame::FetchFullChunk {
                shard,
                epoch_tag,
                idx,
            } => {
                put_u16(buf, shard.raw());
                put_u64(buf, *epoch_tag);
                put_u32(buf, *idx);
            }
            Frame::FetchDelta { shard, have_day } => {
                put_u16(buf, shard.raw());
                put_u32(buf, *have_day);
            }
            Frame::DeltaReply { handle } => match handle {
                None => buf.push(0),
                Some(h) => {
                    buf.push(1);
                    put_u32(buf, h.from_day);
                    put_u32(buf, h.to_day);
                    put_u64(buf, h.len);
                    put_u32(buf, h.chunk_size);
                }
            },
            Frame::FetchDeltaChunk {
                shard,
                from_day,
                idx,
            } => {
                put_u16(buf, shard.raw());
                put_u32(buf, *from_day);
                put_u32(buf, *idx);
            }
            Frame::ChunkReply { idx, crc, bytes } => {
                put_u32(buf, *idx);
                put_u64(buf, *crc);
                put_u32(buf, bytes.len() as u32);
                buf.extend_from_slice(bytes);
            }
            Frame::MetricsReply { dump } => {
                let n = dump.entries.len().min(MAX_METRICS_ENTRIES);
                debug_assert_eq!(n, dump.entries.len(), "registry beyond wire bounds");
                put_u32(buf, n as u32);
                for (name, value) in &dump.entries[..n] {
                    match value {
                        MetricValue::Counter(v) => {
                            buf.push(0);
                            put_str(buf, name);
                            put_u64(buf, *v);
                        }
                        MetricValue::Gauge(v) => {
                            buf.push(1);
                            put_str(buf, name);
                            put_u64(buf, *v);
                        }
                        MetricValue::Histogram(buckets) => {
                            buf.push(2);
                            put_str(buf, name);
                            // Same receiver-side cap as `StatsReply`'s
                            // buckets — one shared constant, one rule.
                            let b = buckets.len().min(MAX_BUCKETS);
                            debug_assert_eq!(b, buckets.len(), "histogram beyond wire bounds");
                            put_u16(buf, b as u16);
                            for &c in &buckets[..b] {
                                put_u64(buf, c);
                            }
                        }
                    }
                }
            }
            Frame::Events { since_seq } => put_u64(buf, *since_seq),
            Frame::EventsReply { page } => {
                put_u64(buf, page.lost);
                put_u64(buf, page.next_seq);
                let n = page.events.len().min(MAX_EVENTS_ENTRIES);
                debug_assert_eq!(n, page.events.len(), "events page beyond wire bounds");
                put_u32(buf, n as u32);
                for e in &page.events[..n] {
                    put_u64(buf, e.seq);
                    put_u64(buf, e.t_ms);
                    buf.push(e.kind.code());
                    put_str(buf, &e.detail);
                }
            }
            Frame::TraceReply { timings } => {
                put_u32(buf, timings.decode_us);
                put_u32(buf, timings.queue_us);
                put_u32(buf, timings.engine_us);
                put_u32(buf, timings.encode_us);
            }
            Frame::Error { fault } => put_fault(buf, fault),
        }
    }

    /// Encode the full frame (header + payload) for `request_id`.
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        let mut payload = Vec::new();
        self.encode_payload(&mut payload);
        let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
        put_u32(&mut out, MAGIC);
        out.push(VERSION);
        out.push(self.frame_type());
        put_u64(&mut out, request_id);
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a payload whose header has already been validated.
    pub fn decode_payload(
        frame_type: u8,
        payload: &[u8],
        limits: &Limits,
    ) -> Result<Frame, WireFault> {
        let mut c = Cursor::new(payload);
        let frame = match frame_type {
            FT_PING => Frame::Ping,
            FT_PONG => Frame::Pong,
            FT_QUERY_BATCH => {
                let shard = ShardId(c.u16()?);
                let n = c.u32()?;
                if n > limits.max_batch {
                    return Err(WireFault::new(
                        ErrorCode::BatchTooLarge,
                        format!("batch of {n} exceeds limit {}", limits.max_batch),
                    ));
                }
                let pairs = (0..n)
                    .map(|_| Ok((Ipv4(c.u32()?), Ipv4(c.u32()?))))
                    .collect::<Result<_, WireFault>>()?;
                Frame::QueryBatch { shard, pairs }
            }
            FT_PATH_BATCH => {
                let n = c.u32()?;
                if n > limits.max_batch {
                    return Err(WireFault::new(
                        ErrorCode::BatchTooLarge,
                        format!("batch of {n} exceeds limit {}", limits.max_batch),
                    ));
                }
                let results = (0..n)
                    .map(|_| {
                        Ok(match c.u8()? {
                            0 => Ok(WirePath {
                                rtt_ms: c.f64()?,
                                loss: c.f64()?,
                                fwd_clusters: c.vec_u32()?,
                                rev_clusters: c.vec_u32()?,
                                fwd_as: c.vec_u32()?,
                                rev_as: c.vec_u32()?,
                            }),
                            1 => Err(c.fault()?),
                            tag => {
                                return Err(WireFault::new(
                                    ErrorCode::Malformed,
                                    format!("bad result tag {tag}"),
                                ))
                            }
                        })
                    })
                    .collect::<Result<_, WireFault>>()?;
                Frame::PathBatch { results }
            }
            FT_RESOLVE => Frame::Resolve {
                shard: ShardId(c.u16()?),
                ip: Ipv4(c.u32()?),
            },
            FT_RESOLVE_REPLY => {
                let prefix = c.u32()?;
                let cluster = c.u32()?;
                let flags = c.u8()?;
                if flags & !0b111 != 0 {
                    return Err(WireFault::new(
                        ErrorCode::Malformed,
                        format!("bad resolution flags {flags:#x}"),
                    ));
                }
                let origin_as = (flags & 1 != 0).then(|| c.u32()).transpose()?;
                let cluster_as = (flags & 2 != 0).then(|| c.u32()).transpose()?;
                Frame::ResolveReply {
                    resolution: WireResolution {
                        prefix,
                        cluster,
                        origin_as,
                        cluster_as,
                        refined_providers: flags & 4 != 0,
                    },
                }
            }
            FT_STATS => Frame::Stats {
                shard: c.shard_or_default()?,
            },
            FT_STATS_REPLY => Frame::StatsReply {
                stats: WireStats {
                    queries: c.u64()?,
                    errors: c.u64()?,
                    qps: c.f64()?,
                    p50_us: c.u64()?,
                    p99_us: c.u64()?,
                    cache_hits: c.u64()?,
                    cache_misses: c.u64()?,
                    cache_evictions: c.u64()?,
                    cache_hit_rate: c.f64()?,
                    swaps: c.u64()?,
                    epoch: c.u64()?,
                    day: c.u32()?,
                    workers: c.u32()?,
                    latency_buckets: {
                        let n = c.u16()? as usize;
                        if n > MAX_BUCKETS {
                            return Err(WireFault::new(
                                ErrorCode::Malformed,
                                format!("{n} latency buckets exceed limit {MAX_BUCKETS}"),
                            ));
                        }
                        (0..n).map(|_| c.u64()).collect::<Result<_, _>>()?
                    },
                },
            },
            FT_EPOCH => Frame::Epoch {
                shard: c.shard_or_default()?,
            },
            FT_EPOCH_REPLY => Frame::EpochReply {
                epoch: c.u64()?,
                day: c.u32()?,
            },
            FT_LIST_SHARDS => Frame::ListShards,
            FT_SHARDS_REPLY => {
                let n = c.u16()? as usize;
                let shards = (0..n)
                    .map(|_| {
                        Ok(WireShardInfo {
                            shard: c.u16()?,
                            epoch: c.u64()?,
                            day: c.u32()?,
                        })
                    })
                    .collect::<Result<_, WireFault>>()?;
                Frame::ShardsReply { shards }
            }
            FT_ATLAS_HEAD => Frame::AtlasHead {
                shard: ShardId(c.u16()?),
            },
            FT_ATLAS_HEAD_REPLY => Frame::AtlasHeadReply {
                version: AtlasVersion {
                    day: c.u32()?,
                    epoch_tag: c.u64()?,
                    full_len: c.u64()?,
                    chunk_size: c.u32()?,
                },
            },
            FT_FETCH_FULL_CHUNK => Frame::FetchFullChunk {
                shard: ShardId(c.u16()?),
                epoch_tag: c.u64()?,
                idx: c.u32()?,
            },
            FT_FETCH_DELTA => Frame::FetchDelta {
                shard: ShardId(c.u16()?),
                have_day: c.u32()?,
            },
            FT_DELTA_REPLY => Frame::DeltaReply {
                handle: match c.u8()? {
                    0 => None,
                    1 => Some(DeltaHandle {
                        from_day: c.u32()?,
                        to_day: c.u32()?,
                        len: c.u64()?,
                        chunk_size: c.u32()?,
                    }),
                    tag => {
                        return Err(WireFault::new(
                            ErrorCode::Malformed,
                            format!("bad delta tag {tag}"),
                        ))
                    }
                },
            },
            FT_FETCH_DELTA_CHUNK => Frame::FetchDeltaChunk {
                shard: ShardId(c.u16()?),
                from_day: c.u32()?,
                idx: c.u32()?,
            },
            FT_CHUNK_REPLY => Frame::ChunkReply {
                idx: c.u32()?,
                crc: c.u64()?,
                bytes: {
                    // The count is bounded by the payload the header
                    // already admitted; `take` rejects a count beyond it.
                    let n = c.u32()? as usize;
                    c.take(n)?.to_vec()
                },
            },
            FT_METRICS => Frame::Metrics,
            FT_METRICS_REPLY => {
                let n = c.u32()? as usize;
                if n > MAX_METRICS_ENTRIES {
                    return Err(WireFault::new(
                        ErrorCode::Malformed,
                        format!("{n} metric entries exceed limit {MAX_METRICS_ENTRIES}"),
                    ));
                }
                let mut entries = Vec::new();
                for _ in 0..n {
                    let kind = c.u8()?;
                    let name = c.string()?;
                    let value = match kind {
                        0 => MetricValue::Counter(c.u64()?),
                        1 => MetricValue::Gauge(c.u64()?),
                        2 => MetricValue::Histogram({
                            let b = c.u16()? as usize;
                            if b > MAX_BUCKETS {
                                return Err(WireFault::new(
                                    ErrorCode::Malformed,
                                    format!("{b} latency buckets exceed limit {MAX_BUCKETS}"),
                                ));
                            }
                            (0..b).map(|_| c.u64()).collect::<Result<_, _>>()?
                        }),
                        tag => {
                            return Err(WireFault::new(
                                ErrorCode::Malformed,
                                format!("bad metric kind {tag}"),
                            ))
                        }
                    };
                    entries.push((name, value));
                }
                // Re-establish the dump's sorted-names invariant — the
                // merge/lookup helpers binary-search, and a hostile
                // sender must not be able to break them.
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                Frame::MetricsReply {
                    dump: MetricsDump { entries },
                }
            }
            FT_EVENTS => Frame::Events {
                since_seq: c.u64()?,
            },
            FT_EVENTS_REPLY => {
                let lost = c.u64()?;
                let next_seq = c.u64()?;
                let n = c.u32()? as usize;
                if n > MAX_EVENTS_ENTRIES {
                    return Err(WireFault::new(
                        ErrorCode::Malformed,
                        format!("{n} events exceed limit {MAX_EVENTS_ENTRIES}"),
                    ));
                }
                let mut events = Vec::new();
                for _ in 0..n {
                    let seq = c.u64()?;
                    let t_ms = c.u64()?;
                    let code = c.u8()?;
                    let detail = c.string()?;
                    // A kind this build doesn't know (a newer peer's
                    // addition) is skipped, not a fault — the payload
                    // was still consumed, so the stream stays aligned.
                    if let Some(kind) = EventKind::from_code(code) {
                        events.push(Event {
                            seq,
                            t_ms,
                            kind,
                            detail,
                        });
                    }
                }
                // Re-establish the ascending-seq invariant the journal
                // promises; a hostile sender must not break mergers.
                events.sort_by_key(|e| e.seq);
                Frame::EventsReply {
                    page: EventsPage {
                        events,
                        lost,
                        next_seq,
                    },
                }
            }
            FT_TRACE_REPLY => Frame::TraceReply {
                timings: TraceTimings {
                    decode_us: c.u32()?,
                    queue_us: c.u32()?,
                    engine_us: c.u32()?,
                    encode_us: c.u32()?,
                },
            },
            FT_ERROR => Frame::Error { fault: c.fault()? },
            t => {
                return Err(WireFault::new(
                    ErrorCode::UnknownFrame,
                    format!("unknown frame type {t:#04x}"),
                ))
            }
        };
        c.done()?;
        Ok(frame)
    }
}

/// Write one frame to `w` (no flush; callers batch and flush).
pub fn write_frame(w: &mut impl Write, request_id: u64, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode(request_id))
}

/// Read one frame from `r`. `Ok(None)` is a clean EOF at a frame
/// boundary; EOF inside a frame is an [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read, limits: &Limits) -> Result<Option<(u64, Frame)>, ReadError> {
    read_frame_timed(r, limits).map(|r| r.map(|(id, frame, _)| (id, frame)))
}

/// [`read_frame`], additionally reporting how long the read + parse
/// took (µs, measured from after the first header byte arrived so idle
/// time between frames is not charged) — the `decode` stage of a
/// request trace.
pub fn read_frame_timed(
    r: &mut impl Read,
    limits: &Limits,
) -> Result<Option<(u64, Frame, u32)>, ReadError> {
    let mut header = [0u8; HEADER_BYTES];
    // First byte separately: a clean close between frames is not an error.
    match r.read(&mut header[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            return read_frame_timed(r, limits);
        }
        Err(e) => return Err(ReadError::Io(e)),
    }
    let started = Instant::now();
    r.read_exact(&mut header[1..])?;
    let (frame_type, request_id, payload_len) =
        validate_header(&header, limits).map_err(ReadError::Fatal)?;
    let mut payload = vec![0u8; payload_len as usize];
    r.read_exact(&mut payload)?;
    match Frame::decode_payload(frame_type, &payload, limits) {
        Ok(frame) => {
            let decode_us = started.elapsed().as_micros().min(u32::MAX as u128) as u32;
            Ok(Some((request_id, frame, decode_us)))
        }
        Err(fault) => Err(ReadError::Frame { request_id, fault }),
    }
}

/// Validate a complete header against `limits`, yielding
/// `(frame_type, request_id, payload_len)` or the *fatal* fault that
/// desynchronises the stream. Shared by the blocking reader above and
/// the incremental [`FrameAssembler`], so both severities stay
/// byte-for-byte identical whichever reader a peer lands on.
fn validate_header(
    header: &[u8; HEADER_BYTES],
    limits: &Limits,
) -> Result<(u8, u64, u32), WireFault> {
    let magic = u32::from_be_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(WireFault::new(
            ErrorCode::BadMagic,
            format!("got {magic:#010x}, want {MAGIC:#010x}"),
        ));
    }
    let version = header[4];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(WireFault::new(
            ErrorCode::BadVersion,
            format!("got version {version}, want {MIN_VERSION}..={VERSION}"),
        ));
    }
    let frame_type = header[5];
    let request_id = u64::from_be_bytes(header[6..14].try_into().unwrap());
    let payload_len = u32::from_be_bytes(header[14..18].try_into().unwrap());
    if payload_len > limits.max_frame_bytes {
        return Err(WireFault::new(
            ErrorCode::FrameTooLarge,
            format!(
                "declared payload of {payload_len} bytes exceeds limit {}",
                limits.max_frame_bytes
            ),
        ));
    }
    Ok((frame_type, request_id, payload_len))
}

// ---- datagram transport --------------------------------------------

/// Largest UDP payload a single IPv4 datagram can carry
/// (65535 − 20 IP − 8 UDP). The datagram plane never sends more.
pub const MAX_UDP_PAYLOAD: usize = 65_507;

/// The reply-size budget of the datagram transport under `limits`:
/// one whole encoded frame (header included) must fit both the
/// receiver's frame limit and a single UDP datagram. The datagram
/// analogue of [`chunk_size_for`] — a reply that would exceed this is
/// answered with a typed `FrameTooLarge` fault instead, telling the
/// client to re-ask on the stream transport (or with a smaller batch).
pub fn datagram_cap(limits: &Limits) -> usize {
    (limits.max_frame_bytes as usize + HEADER_BYTES).min(MAX_UDP_PAYLOAD)
}

/// Why a datagram produced no [`Frame`]. Unlike the stream reader
/// there is no severity ladder — datagrams are self-delimiting, so
/// nothing can desynchronise — only the question of whether the
/// sender can be answered at all.
#[derive(Debug)]
pub enum DatagramError {
    /// The bytes cannot be attributed to a request (short header, bad
    /// magic, unsupported version): drop silently. Answering unver-
    /// ified garbage would make the socket a reflection amplifier.
    Drop(&'static str),
    /// The header is sound — the request id is trustworthy — but the
    /// frame is not servable: answer one typed fault datagram.
    Fault { request_id: u64, fault: WireFault },
}

/// Decode exactly one frame from one datagram. The frame must span
/// the whole buffer: a declared payload length that disagrees with
/// the datagram length (kernel truncation, corruption, trailing
/// bytes) is a typed `Malformed` fault.
pub fn decode_datagram(buf: &[u8], limits: &Limits) -> Result<(u64, Frame), DatagramError> {
    if buf.len() < HEADER_BYTES {
        return Err(DatagramError::Drop("short header"));
    }
    let header: &[u8; HEADER_BYTES] = buf[..HEADER_BYTES].try_into().unwrap();
    let (frame_type, request_id, payload_len) = match validate_header(header, limits) {
        Ok(parts) => parts,
        Err(fault) => match fault.code {
            // Unverified sender: no magic/version handshake passed.
            ErrorCode::BadMagic | ErrorCode::BadVersion => {
                return Err(DatagramError::Drop("bad magic or version"));
            }
            _ => {
                return Err(DatagramError::Fault {
                    request_id: header_request_id(header),
                    fault,
                })
            }
        },
    };
    let payload = &buf[HEADER_BYTES..];
    if payload.len() != payload_len as usize {
        return Err(DatagramError::Fault {
            request_id,
            fault: WireFault::new(
                ErrorCode::Malformed,
                format!(
                    "datagram carries {} payload bytes, header declares {payload_len}",
                    payload.len()
                ),
            ),
        });
    }
    match Frame::decode_payload(frame_type, payload, limits) {
        Ok(frame) => Ok((request_id, frame)),
        Err(fault) => Err(DatagramError::Fault { request_id, fault }),
    }
}

/// The request id field of a validated-length header, for faulting
/// back to a sender whose header failed a post-magic check.
fn header_request_id(header: &[u8; HEADER_BYTES]) -> u64 {
    u64::from_be_bytes(header[6..14].try_into().unwrap())
}

// ---- incremental (readiness-driven) frame assembly ------------------

/// One completed step of incremental decoding — what a blocking reader
/// would have returned, minus the I/O.
#[derive(Debug)]
pub enum Assembled {
    /// A complete frame decoded. `decode_us` spans the first byte of
    /// this frame reaching the assembler to decode completing — the
    /// trace `decode` stage, fragmentation stalls included, matching
    /// what [`read_frame_timed`] charges a blocking reader.
    Frame {
        request_id: u64,
        frame: Frame,
        decode_us: u32,
    },
    /// The payload was framed soundly but does not parse. The stream
    /// is still aligned; feeding may continue.
    Fault { request_id: u64, fault: WireFault },
    /// The stream desynchronised (bad magic or version, oversized
    /// declared payload). Answer once and close: the assembler is
    /// poisoned and consumes nothing further.
    Fatal { fault: WireFault },
}

enum AsmState {
    /// Accumulating the fixed 18-byte header; `started` is stamped
    /// when the frame's first byte arrives.
    Header {
        buf: [u8; HEADER_BYTES],
        have: usize,
        started: Option<Instant>,
    },
    /// Header validated; accumulating `need` payload bytes.
    Payload {
        request_id: u64,
        frame_type: u8,
        need: usize,
        buf: Vec<u8>,
        started: Instant,
    },
    /// A fatal fault was reported; no further input is accepted.
    Poisoned,
}

/// The per-connection reader state machine for a nonblocking socket:
/// feed it whatever bytes each readiness event yields — in any
/// fragmentation, down to one byte at a time — and it emits exactly
/// the `(request_id, Frame, decode_us)` sequence the blocking
/// [`read_frame_timed`] loop would have produced, with the same
/// fatal-versus-per-frame severity split.
pub struct FrameAssembler {
    state: AsmState,
}

impl Default for FrameAssembler {
    fn default() -> FrameAssembler {
        FrameAssembler::new()
    }
}

impl FrameAssembler {
    pub fn new() -> FrameAssembler {
        FrameAssembler {
            state: AsmState::Header {
                buf: [0; HEADER_BYTES],
                have: 0,
                started: None,
            },
        }
    }

    /// True when a frame is partially assembled — an EOF here is a
    /// truncated frame, not a clean close at a boundary.
    pub fn mid_frame(&self) -> bool {
        match &self.state {
            AsmState::Header { have, .. } => *have > 0,
            AsmState::Payload { .. } => true,
            AsmState::Poisoned => false,
        }
    }

    /// Consume a prefix of `input`, returning how many bytes were taken
    /// and at most one assembled event. Callers loop — re-feeding the
    /// unconsumed remainder — until a call consumes nothing and yields
    /// nothing; a poisoned assembler does exactly that forever.
    pub fn feed(&mut self, input: &[u8], limits: &Limits) -> (usize, Option<Assembled>) {
        match &mut self.state {
            AsmState::Poisoned => (0, None),
            AsmState::Header { buf, have, started } => {
                if input.is_empty() {
                    return (0, None);
                }
                if started.is_none() {
                    *started = Some(Instant::now());
                }
                let take = input.len().min(HEADER_BYTES - *have);
                buf[*have..*have + take].copy_from_slice(&input[..take]);
                *have += take;
                if *have < HEADER_BYTES {
                    return (take, None);
                }
                let started = started.expect("stamped on first byte");
                match validate_header(buf, limits) {
                    Err(fault) => {
                        self.state = AsmState::Poisoned;
                        (take, Some(Assembled::Fatal { fault }))
                    }
                    Ok((frame_type, request_id, 0)) => {
                        let event = self.complete(request_id, frame_type, &[], started, limits);
                        (take, Some(event))
                    }
                    Ok((frame_type, request_id, payload_len)) => {
                        self.state = AsmState::Payload {
                            request_id,
                            frame_type,
                            need: payload_len as usize,
                            buf: Vec::with_capacity(payload_len as usize),
                            started,
                        };
                        (take, None)
                    }
                }
            }
            AsmState::Payload {
                request_id,
                frame_type,
                need,
                buf,
                started,
            } => {
                let take = input.len().min(*need - buf.len());
                buf.extend_from_slice(&input[..take]);
                if buf.len() < *need {
                    return (take, None);
                }
                let (request_id, frame_type, started) = (*request_id, *frame_type, *started);
                let payload = std::mem::take(buf);
                let event = self.complete(request_id, frame_type, &payload, started, limits);
                (take, Some(event))
            }
        }
    }

    /// Decode a fully-buffered payload and reset for the next frame.
    fn complete(
        &mut self,
        request_id: u64,
        frame_type: u8,
        payload: &[u8],
        started: Instant,
        limits: &Limits,
    ) -> Assembled {
        self.state = AsmState::Header {
            buf: [0; HEADER_BYTES],
            have: 0,
            started: None,
        };
        match Frame::decode_payload(frame_type, payload, limits) {
            Ok(frame) => Assembled::Frame {
                request_id,
                frame,
                decode_us: started.elapsed().as_micros().min(u32::MAX as u128) as u32,
            },
            Err(fault) => Assembled::Fault { request_id, fault },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame, id: u64) {
        let bytes = frame.encode(id);
        let limits = Limits::default();
        let (got_id, got) = read_frame(&mut &bytes[..], &limits)
            .expect("decodes")
            .expect("not EOF");
        assert_eq!(got_id, id);
        assert_eq!(got, frame);
    }

    #[test]
    fn empty_payload_frames_round_trip() {
        for f in [Frame::Ping, Frame::Pong, Frame::ListShards] {
            round_trip(f, 7);
        }
    }

    #[test]
    fn shard_routed_requests_round_trip() {
        for shard in [ShardId::DEFAULT, ShardId(3), ShardId(u16::MAX)] {
            round_trip(Frame::Stats { shard }, 11);
            round_trip(Frame::Epoch { shard }, 12);
            round_trip(Frame::Resolve { shard, ip: Ipv4(9) }, 13);
        }
    }

    #[test]
    fn shardless_stats_and_epoch_payloads_mean_shard_zero() {
        // The v1 encoding of Stats/Epoch was an empty payload; in v2
        // the shard id is optional and absence means shard 0.
        for (ft, want) in [
            (
                FT_STATS,
                Frame::Stats {
                    shard: ShardId::DEFAULT,
                },
            ),
            (
                FT_EPOCH,
                Frame::Epoch {
                    shard: ShardId::DEFAULT,
                },
            ),
        ] {
            let got = Frame::decode_payload(ft, &[], &Limits::default()).expect("decodes");
            assert_eq!(got, want);
        }
    }

    #[test]
    fn shards_reply_round_trips() {
        round_trip(Frame::ShardsReply { shards: vec![] }, 4);
        round_trip(
            Frame::ShardsReply {
                shards: vec![
                    WireShardInfo {
                        shard: 0,
                        epoch: 4,
                        day: 4,
                    },
                    WireShardInfo {
                        shard: 9,
                        epoch: 0,
                        day: 77,
                    },
                ],
            },
            5,
        );
    }

    #[test]
    fn query_batch_round_trips() {
        round_trip(
            Frame::QueryBatch {
                shard: ShardId(2),
                pairs: vec![(Ipv4(1), Ipv4(2)), (Ipv4(0xffff_ffff), Ipv4(0))],
            },
            u64::MAX,
        );
    }

    #[test]
    fn dissemination_frames_round_trip() {
        round_trip(Frame::AtlasHead { shard: ShardId(2) }, 20);
        round_trip(
            Frame::AtlasHeadReply {
                version: AtlasVersion {
                    day: 7,
                    epoch_tag: 0xdead_beef_cafe_f00d,
                    full_len: 7_340_032,
                    chunk_size: 262_128,
                },
            },
            21,
        );
        round_trip(
            Frame::FetchFullChunk {
                shard: ShardId(0),
                epoch_tag: 42,
                idx: 17,
            },
            22,
        );
        round_trip(
            Frame::FetchDelta {
                shard: ShardId(9),
                have_day: 4,
            },
            23,
        );
        round_trip(Frame::DeltaReply { handle: None }, 24);
        round_trip(
            Frame::DeltaReply {
                handle: Some(DeltaHandle {
                    from_day: 4,
                    to_day: 5,
                    len: 20_000,
                    chunk_size: 4096,
                }),
            },
            25,
        );
        round_trip(
            Frame::FetchDeltaChunk {
                shard: ShardId(1),
                from_day: 4,
                idx: 0,
            },
            26,
        );
        let bytes: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        round_trip(
            Frame::ChunkReply {
                idx: 3,
                crc: inano_core::content_tag(&bytes),
                bytes,
            },
            27,
        );
    }

    #[test]
    fn chunk_size_never_exceeds_the_frame_limit() {
        for max in [64u32, 1024, 1 << 20, 64 << 20] {
            let limits = Limits {
                max_frame_bytes: max,
                max_batch: 16,
            };
            let cs = chunk_size_for(&limits);
            assert!(cs >= 1);
            assert!(
                cs + CHUNK_WIRE_OVERHEAD <= max || max <= CHUNK_WIRE_OVERHEAD,
                "chunk {cs} + overhead must fit {max}"
            );
            // A ChunkReply of exactly that size decodes under the limit.
            let frame = Frame::ChunkReply {
                idx: 0,
                crc: 0,
                bytes: vec![7; cs as usize],
            };
            let payload = frame.encode(1).len() - HEADER_BYTES;
            assert!(payload as u32 <= max, "payload {payload} must fit {max}");
        }
    }

    #[test]
    fn clean_eof_is_none() {
        let limits = Limits::default();
        assert!(matches!(read_frame(&mut &[][..], &limits), Ok(None)));
    }

    #[test]
    fn eof_mid_frame_is_io_error() {
        let bytes = Frame::Ping.encode(1);
        let limits = Limits::default();
        match read_frame(&mut &bytes[..HEADER_BYTES - 3], &limits) {
            Err(ReadError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("want io error, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut bytes = Frame::Ping.encode(1);
        bytes[0] ^= 0xff;
        let limits = Limits::default();
        match read_frame(&mut &bytes[..], &limits) {
            Err(ReadError::Fatal(fault)) => assert_eq!(fault.code, ErrorCode::BadMagic),
            other => panic!("want fatal, got {other:?}"),
        }
    }

    #[test]
    fn oversized_declared_payload_is_fatal() {
        let limits = Limits {
            max_frame_bytes: 64,
            max_batch: 8,
        };
        let bytes = Frame::QueryBatch {
            shard: ShardId::DEFAULT,
            pairs: vec![(Ipv4(1), Ipv4(2)); 16],
        }
        .encode(3);
        match read_frame(&mut &bytes[..], &limits) {
            Err(ReadError::Fatal(fault)) => assert_eq!(fault.code, ErrorCode::FrameTooLarge),
            other => panic!("want fatal, got {other:?}"),
        }
    }

    #[test]
    fn over_limit_batch_is_per_frame_error() {
        let limits = Limits {
            max_frame_bytes: 1 << 20,
            max_batch: 4,
        };
        let bytes = Frame::QueryBatch {
            shard: ShardId::DEFAULT,
            pairs: vec![(Ipv4(1), Ipv4(2)); 5],
        }
        .encode(9);
        match read_frame(&mut &bytes[..], &limits) {
            Err(ReadError::Frame { request_id, fault }) => {
                assert_eq!(request_id, 9);
                assert_eq!(fault.code, ErrorCode::BatchTooLarge);
            }
            other => panic!("want frame error, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut bytes = Frame::Resolve {
            shard: ShardId(1),
            ip: Ipv4(5),
        }
        .encode(2);
        // Grow the payload by one byte and fix up the declared length.
        bytes.push(0);
        let len = (bytes.len() - HEADER_BYTES) as u32;
        bytes[14..18].copy_from_slice(&len.to_be_bytes());
        let limits = Limits::default();
        match read_frame(&mut &bytes[..], &limits) {
            Err(ReadError::Frame { fault, .. }) => assert_eq!(fault.code, ErrorCode::Malformed),
            other => panic!("want frame error, got {other:?}"),
        }
    }

    #[test]
    fn hostile_bucket_count_is_a_typed_malformed_fault() {
        let stats = WireStats::from(&ServiceStats::default());
        assert!(stats.latency_buckets.is_empty());
        let mut bytes = Frame::StatsReply { stats }.encode(1);
        // With no buckets the count is the payload's last u16; claim
        // 65535 of them. The decoder must refuse at the count — before
        // the `1 << i` quantile math anyone downstream would run.
        let at = bytes.len() - 2;
        bytes[at..].copy_from_slice(&u16::MAX.to_be_bytes());
        match read_frame(&mut &bytes[..], &Limits::default()) {
            Err(ReadError::Frame { fault, .. }) => assert_eq!(fault.code, ErrorCode::Malformed),
            other => panic!("want per-frame error, got {other:?}"),
        }
    }

    #[test]
    fn observability_frames_round_trip() {
        round_trip(Frame::Metrics, 30);
        round_trip(
            Frame::MetricsReply {
                dump: MetricsDump::default(),
            },
            31,
        );
        round_trip(
            Frame::MetricsReply {
                dump: MetricsDump {
                    entries: vec![
                        (
                            "shard0.latency_us".into(),
                            MetricValue::Histogram(vec![0, 3, 1]),
                        ),
                        ("shard0.queries".into(), MetricValue::Counter(42)),
                        ("srv.active".into(), MetricValue::Gauge(2)),
                    ],
                },
            },
            32,
        );
        round_trip(
            Frame::TraceReply {
                timings: TraceTimings {
                    decode_us: 1,
                    queue_us: 200,
                    engine_us: 30_000,
                    encode_us: 4,
                },
            },
            33 | TRACE_FLAG,
        );
    }

    #[test]
    fn version_3_and_4_frames_still_decode_under_v5() {
        // v4 and v5 added only new frame types; an older peer's frames
        // are bit-identical except the version byte, and must keep
        // working.
        let frame = Frame::QueryBatch {
            shard: ShardId(1),
            pairs: vec![(Ipv4(1), Ipv4(2))],
        };
        let mut bytes = frame.encode(6);
        assert_eq!(bytes[4], VERSION);
        for old in [3u8, 4] {
            bytes[4] = old;
            let (id, got) = read_frame(&mut &bytes[..], &Limits::default())
                .expect("old-version frame decodes")
                .expect("not EOF");
            assert_eq!(id, 6);
            assert_eq!(got, frame);
        }
        // Anything outside the window stays a fatal BadVersion.
        for bad in [0u8, 2, VERSION + 1] {
            bytes[4] = bad;
            match read_frame(&mut &bytes[..], &Limits::default()) {
                Err(ReadError::Fatal(fault)) => assert_eq!(fault.code, ErrorCode::BadVersion),
                other => panic!("want fatal BadVersion for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn event_frames_round_trip() {
        round_trip(Frame::Events { since_seq: 0 }, 40);
        round_trip(
            Frame::Events {
                since_seq: u64::MAX,
            },
            41,
        );
        round_trip(
            Frame::EventsReply {
                page: EventsPage::default(),
            },
            42,
        );
        round_trip(
            Frame::EventsReply {
                page: EventsPage {
                    events: vec![
                        Event {
                            seq: 3,
                            t_ms: 1_700_000_000_123,
                            kind: EventKind::FullResync,
                            detail: "shard0 day=4".into(),
                        },
                        Event {
                            seq: 4,
                            t_ms: 1_700_000_000_456,
                            kind: EventKind::ConnClosed,
                            detail: String::new(),
                        },
                    ],
                    lost: 2,
                    next_seq: 5,
                },
            },
            43,
        );
    }

    #[test]
    fn hostile_events_count_is_a_typed_malformed_fault() {
        let mut bytes = Frame::EventsReply {
            page: EventsPage::default(),
        }
        .encode(1);
        // The empty page's payload ends with the u32 event count; claim
        // far over the cap. The decoder must refuse at the count.
        let at = bytes.len() - 4;
        bytes[at..].copy_from_slice(&u32::MAX.to_be_bytes());
        match read_frame(&mut &bytes[..], &Limits::default()) {
            Err(ReadError::Frame { fault, .. }) => assert_eq!(fault.code, ErrorCode::Malformed),
            other => panic!("want per-frame error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_event_kind_codes_are_skipped_not_faulted() {
        let mut bytes = Frame::EventsReply {
            page: EventsPage {
                events: vec![
                    Event {
                        seq: 1,
                        t_ms: 10,
                        kind: EventKind::DeltaApplied,
                        detail: "d".into(),
                    },
                    Event {
                        seq: 2,
                        t_ms: 11,
                        kind: EventKind::ConnAccepted,
                        detail: "x".into(),
                    },
                ],
                lost: 0,
                next_seq: 3,
            },
        }
        .encode(9);
        // Corrupt the second event's kind byte to a code from the
        // future: count(4) + [seq(8) + t_ms(8) + kind(1) + len(2) +
        // detail(1)] puts it 24 bytes before the end (kind + len +
        // detail of the last event).
        let at = bytes.len() - 4;
        assert_eq!(bytes[at], EventKind::ConnAccepted.code());
        bytes[at] = 250;
        let (_, got) = read_frame(&mut &bytes[..], &Limits::default())
            .expect("decodes")
            .expect("not EOF");
        match got {
            Frame::EventsReply { page } => {
                assert_eq!(page.events.len(), 1);
                assert_eq!(page.events[0].kind, EventKind::DeltaApplied);
                assert_eq!(page.next_seq, 3);
            }
            other => panic!("want events reply, got {other:?}"),
        }
    }

    #[test]
    fn hostile_metrics_entry_count_is_a_typed_malformed_fault() {
        let mut bytes = Frame::MetricsReply {
            dump: MetricsDump::default(),
        }
        .encode(1);
        // The empty dump's payload is just the u32 entry count; claim
        // far over the cap. The decoder must refuse at the count.
        let at = bytes.len() - 4;
        bytes[at..].copy_from_slice(&u32::MAX.to_be_bytes());
        match read_frame(&mut &bytes[..], &Limits::default()) {
            Err(ReadError::Frame { fault, .. }) => assert_eq!(fault.code, ErrorCode::Malformed),
            other => panic!("want per-frame error, got {other:?}"),
        }
    }

    #[test]
    fn decoded_metrics_dumps_are_re_sorted() {
        // A hostile sender may ship names out of order; the decoder
        // restores the sorted invariant the merge helpers rely on.
        let dump = MetricsDump {
            entries: vec![
                ("z.last".into(), MetricValue::Counter(1)),
                ("a.first".into(), MetricValue::Counter(2)),
            ],
        };
        let bytes = Frame::MetricsReply { dump }.encode(2);
        let (_, got) = read_frame(&mut &bytes[..], &Limits::default())
            .unwrap()
            .unwrap();
        match got {
            Frame::MetricsReply { dump } => {
                assert_eq!(dump.entries[0].0, "a.first");
                assert_eq!(dump.counter("z.last"), 1);
            }
            other => panic!("want metrics reply, got {other:?}"),
        }
    }

    #[test]
    fn read_frame_timed_reports_a_decode_duration() {
        let bytes = Frame::Ping.encode(5);
        let (id, frame, decode_us) = read_frame_timed(&mut &bytes[..], &Limits::default())
            .expect("decodes")
            .expect("not EOF");
        assert_eq!(id, 5);
        assert_eq!(frame, Frame::Ping);
        // An in-memory read is fast; the point is it's measured, not 0
        // by construction on a slow CI box.
        assert!(decode_us < 1_000_000, "decode_us {decode_us}");
    }

    #[test]
    fn long_fault_messages_truncate_on_char_boundary() {
        let fault = WireFault::new(ErrorCode::NoPath, "é".repeat(600));
        let bytes = Frame::Error {
            fault: fault.clone(),
        }
        .encode(1);
        let limits = Limits::default();
        let (_, got) = read_frame(&mut &bytes[..], &limits).unwrap().unwrap();
        match got {
            Frame::Error { fault: got } => {
                assert_eq!(got.code, fault.code);
                assert!(got.message.len() <= 512);
                assert!(fault.message.starts_with(&got.message));
            }
            other => panic!("want error frame, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod assembler_tests {
    use super::*;

    /// Feed `bytes` through a fresh assembler in `chunk`-sized pieces,
    /// collecting every event.
    fn feed_chunked(bytes: &[u8], chunk: usize, limits: &Limits) -> Vec<Assembled> {
        let mut asm = FrameAssembler::new();
        let mut events = Vec::new();
        for piece in bytes.chunks(chunk) {
            let mut rest = piece;
            while !rest.is_empty() {
                let (taken, event) = asm.feed(rest, limits);
                events.extend(event);
                if taken == 0 {
                    // Poisoned: the remainder must never be consumed.
                    assert!(matches!(events.last(), Some(Assembled::Fatal { .. })));
                    return events;
                }
                rest = &rest[taken..];
            }
        }
        events
    }

    fn sample_stream() -> (Vec<Frame>, Vec<u64>, Vec<u8>) {
        let frames = vec![
            Frame::QueryBatch {
                shard: ShardId(1),
                pairs: vec![(Ipv4(10), Ipv4(20)), (Ipv4(30), Ipv4(40))],
            },
            Frame::Ping,
            Frame::Error {
                fault: WireFault::new(ErrorCode::NoPath, "no path"),
            },
        ];
        let ids = vec![1, TRACE_FLAG | 2, 3];
        let mut bytes = Vec::new();
        for (frame, id) in frames.iter().zip(&ids) {
            bytes.extend_from_slice(&frame.encode(*id));
        }
        (frames, ids, bytes)
    }

    #[test]
    fn byte_at_a_time_reassembles_a_pipelined_stream() {
        let (frames, ids, bytes) = sample_stream();
        let events = feed_chunked(&bytes, 1, &Limits::default());
        assert_eq!(events.len(), frames.len());
        for ((event, want), want_id) in events.iter().zip(&frames).zip(&ids) {
            match event {
                Assembled::Frame {
                    request_id, frame, ..
                } => {
                    assert_eq!(request_id, want_id);
                    assert_eq!(frame, want);
                }
                other => panic!("want frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_fragmentation_yields_the_same_frames() {
        // Pathological chop sizes, none aligned with the 18-byte
        // header: every boundary lands mid-header or mid-payload
        // somewhere in the stream.
        let (frames, _, bytes) = sample_stream();
        for chunk in [2, 3, 5, 7, 11, 13, 17, 19, 23] {
            let events = feed_chunked(&bytes, chunk, &Limits::default());
            let got: Vec<&Frame> = events
                .iter()
                .map(|e| match e {
                    Assembled::Frame { frame, .. } => frame,
                    other => panic!("chunk {chunk}: want frame, got {other:?}"),
                })
                .collect();
            assert_eq!(got.len(), frames.len(), "chunk size {chunk}");
            for (got, want) in got.iter().zip(&frames) {
                assert_eq!(*got, want, "chunk size {chunk}");
            }
        }
    }

    #[test]
    fn split_inside_the_length_header_carries_across_events() {
        let frame = Frame::QueryBatch {
            shard: ShardId(0),
            pairs: vec![(Ipv4(1), Ipv4(2))],
        };
        let bytes = frame.encode(9);
        let limits = Limits::default();
        let mut asm = FrameAssembler::new();
        // 16 bytes ends two bytes *inside* the 4-byte length field.
        let (taken, event) = asm.feed(&bytes[..16], &limits);
        assert_eq!(taken, 16);
        assert!(event.is_none());
        assert!(asm.mid_frame());
        // One more length byte; still no complete header.
        let (taken, event) = asm.feed(&bytes[16..17], &limits);
        assert_eq!(taken, 1);
        assert!(event.is_none());
        // The rest: header completes, payload accumulates, frame pops.
        let mut rest = &bytes[17..];
        let mut got = None;
        while !rest.is_empty() {
            let (taken, event) = asm.feed(rest, &limits);
            assert!(taken > 0);
            rest = &rest[taken..];
            if let Some(e) = event {
                got = Some(e);
            }
        }
        match got.expect("frame assembled") {
            Assembled::Frame {
                request_id,
                frame: got,
                ..
            } => {
                assert_eq!(request_id, 9);
                assert_eq!(got, frame);
            }
            other => panic!("want frame, got {other:?}"),
        }
    }

    #[test]
    fn per_frame_fault_keeps_the_stream_aligned() {
        // A batch over `max_batch` is framed soundly but must not
        // parse; the next frame on the stream still decodes.
        let big = Frame::QueryBatch {
            shard: ShardId(0),
            pairs: (0..5).map(|i| (Ipv4(i), Ipv4(i))).collect(),
        };
        let mut bytes = big.encode(4);
        bytes.extend_from_slice(&Frame::Ping.encode(5));
        let limits = Limits {
            max_batch: 2,
            ..Limits::default()
        };
        let events = feed_chunked(&bytes, 3, &limits);
        assert_eq!(events.len(), 2);
        match &events[0] {
            Assembled::Fault { request_id, fault } => {
                assert_eq!(*request_id, 4);
                assert_eq!(fault.code, ErrorCode::BatchTooLarge);
            }
            other => panic!("want fault, got {other:?}"),
        }
        match &events[1] {
            Assembled::Frame {
                request_id,
                frame: Frame::Ping,
                ..
            } => assert_eq!(*request_id, 5),
            other => panic!("want ping, got {other:?}"),
        }
    }

    #[test]
    fn fatal_poisons_the_assembler() {
        let mut bytes = Frame::Ping.encode(1);
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]); // bad magic
        bytes.extend_from_slice(&Frame::Ping.encode(2).as_slice()[4..]);
        bytes.extend_from_slice(&Frame::Ping.encode(3)); // never reached
        let limits = Limits::default();
        let events = feed_chunked(&bytes, 1, &limits);
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Assembled::Frame { request_id: 1, .. }));
        match &events[1] {
            Assembled::Fatal { fault } => assert_eq!(fault.code, ErrorCode::BadMagic),
            other => panic!("want fatal, got {other:?}"),
        }
        // Poisoned: nothing further is consumed, ever.
        let mut asm = FrameAssembler::new();
        let (_, event) = asm.feed(&[0u8; HEADER_BYTES], &limits);
        assert!(matches!(event, Some(Assembled::Fatal { .. })));
        let (taken, event) = asm.feed(b"more", &limits);
        assert_eq!(taken, 0);
        assert!(event.is_none());
        assert!(!asm.mid_frame());
    }

    #[test]
    fn oversized_declared_payload_is_fatal_before_any_payload_arrives() {
        let limits = Limits {
            max_frame_bytes: 64,
            ..Limits::default()
        };
        let big = Frame::QueryBatch {
            shard: ShardId(0),
            pairs: (0..100).map(|i| (Ipv4(i), Ipv4(i))).collect(),
        };
        let bytes = big.encode(7);
        let mut asm = FrameAssembler::new();
        // Feed exactly the header: the fatal must fire on validation,
        // without waiting for (or allocating) the declared payload.
        let (taken, event) = asm.feed(&bytes[..HEADER_BYTES], &limits);
        assert_eq!(taken, HEADER_BYTES);
        match event {
            Some(Assembled::Fatal { fault }) => assert_eq!(fault.code, ErrorCode::FrameTooLarge),
            other => panic!("want fatal, got {other:?}"),
        }
    }

    #[test]
    fn empty_payload_frames_complete_at_the_header_boundary() {
        let bytes = Frame::Ping.encode(42);
        assert_eq!(bytes.len(), HEADER_BYTES);
        let mut asm = FrameAssembler::new();
        let (taken, event) = asm.feed(&bytes, &Limits::default());
        assert_eq!(taken, HEADER_BYTES);
        assert!(matches!(
            event,
            Some(Assembled::Frame {
                request_id: 42,
                frame: Frame::Ping,
                ..
            })
        ));
        assert!(!asm.mid_frame());
    }
}
