//! The client library: a blocking connection to an `inano-serve`
//! instance with synchronous calls *and* pipelined batch submission.
//!
//! Every engine-touching call exists in two spellings: the plain one
//! (`query_batch`, `stats`, `epoch`, `resolve`) talks to shard 0 —
//! exactly the pre-sharding semantics — and the `_on` variant
//! (`query_batch_on`, ...) names a [`ShardId`] explicitly.
//! [`NetClient::shards`] enumerates what the server hosts.
//!
//! Pipelining is plain request ids: [`NetClient::submit`] writes a
//! request and returns immediately with its id; [`NetClient::recv`]
//! reads the next reply off the stream (the server answers in request
//! order, and every reply echoes its request's id). A loadgen keeps
//! `depth` batches in flight by submitting `depth` requests up front
//! and then re-submitting after every receive — that hides a full
//! round-trip time behind server-side work.

use crate::wire::{read_frame, write_frame, Frame, Limits, ReadError, WireFault, TRACE_FLAG};
use crate::wire::{WirePath, WireResolution, WireShardInfo, WireStats};
use inano_core::{AtlasChunk, AtlasSource, AtlasVersion, DeltaHandle};
use inano_model::{ErrorCode, Ipv4, ModelError};
use inano_obs::{EventsPage, MetricsDump, TraceTimings};
use inano_service::ShardId;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// A client-side failure: transport, a typed server fault, or a
/// protocol violation (reply the client did not expect).
#[derive(Debug)]
pub enum NetError {
    Io(io::Error),
    /// The server answered with a typed error frame.
    Remote(WireFault),
    /// The server broke the protocol (wrong reply type, bad id...).
    Protocol(String),
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Remote(fault) => write!(f, "server fault: {fault}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl NetError {
    /// Fold into a [`ModelError`] for `AtlasSource` callers: typed
    /// model faults cross back into their variants (so an
    /// `AtlasReader` can react to `VersionRaced` from a remote mirror
    /// exactly as from a local source); transport-level failures become
    /// `Decode` errors carrying the story.
    pub fn into_model(self) -> ModelError {
        match self {
            NetError::Remote(fault) => match fault.code {
                ErrorCode::VersionRaced => ModelError::VersionRaced(fault.message),
                ErrorCode::ChunkOutOfRange => ModelError::ChunkOutOfRange(fault.message),
                ErrorCode::UnroutableAddress => ModelError::UnroutableAddress(fault.message),
                ErrorCode::Decode => ModelError::Decode(fault.message),
                ErrorCode::PatchMismatch => ModelError::PatchMismatch(fault.message),
                ErrorCode::NoPath => ModelError::NoPath(fault.message),
                ErrorCode::Config => ModelError::Config(fault.message),
                // The id rides only in the message ("unknown shard N",
                // the `ModelError::UnknownShard` Display form); recover
                // it so callers can match the typed variant and drop or
                // alert on the shard, rather than retrying a generic
                // decode error forever.
                ErrorCode::UnknownShard => ModelError::UnknownShard(
                    fault
                        .message
                        .rsplit(' ')
                        .next()
                        .and_then(|id| id.parse().ok())
                        .unwrap_or(0),
                ),
                _ => ModelError::Decode(format!("remote fault: {fault}")),
            },
            NetError::Io(e) => ModelError::Decode(format!("transport: {e}")),
            NetError::Protocol(msg) => ModelError::Decode(format!("protocol violation: {msg}")),
        }
    }
}

/// A connection to a server speaking the `inano-net` wire protocol.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    addr: SocketAddr,
    limits: Limits,
    next_id: u64,
    /// The shard-0 epoch tag named by the last `atlas_head()` — what
    /// this client's own [`AtlasSource`] impl fetches chunks of.
    atlas_tag: Option<u64>,
}

impl NetClient {
    /// Connect with client-appropriate default limits: same
    /// `max_batch` as the server default, but a much larger receive
    /// frame bound — a `PathBatch` reply to a full `max_batch` query
    /// batch carries whole paths and can legitimately exceed the
    /// *request*-side 1 MiB default.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let reply_limits = Limits {
            max_frame_bytes: 32 << 20,
            ..Limits::default()
        };
        NetClient::connect_with(addr, reply_limits)
    }

    /// Connect with explicit limits (must admit the server's replies:
    /// a reply to a `max_batch` query batch is well over the request's
    /// size once paths are attached).
    pub fn connect_with(addr: impl ToSocketAddrs, limits: Limits) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        Ok(NetClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            addr,
            limits,
            next_id: 1,
            atlas_tag: None,
        })
    }

    /// Open a datagram-plane handle to a server's `--udp` socket: the
    /// connectionless sibling of [`NetClient::connect`], for sporadic
    /// single-shot queries. See [`UdpQuerier`].
    pub fn udp(addr: impl ToSocketAddrs) -> io::Result<crate::udp::UdpQuerier> {
        crate::udp::UdpQuerier::connect(addr)
    }

    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bound every read and write on this connection; `None` restores
    /// block-forever. A call that times out surfaces as an Io error
    /// and may leave the stream torn mid-frame — treat the connection
    /// as dead and reconnect. Long-lived pollers (the `--mirror`
    /// refresh loop) set this so a half-dead upstream cannot wedge
    /// them, or anything serialised behind them, forever.
    pub fn set_io_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        // reader and writer wrap clones of one socket; options live on
        // the shared description, but set both for explicitness.
        for stream in [self.reader.get_ref(), self.writer.get_ref()] {
            stream.set_read_timeout(timeout)?;
            stream.set_write_timeout(timeout)?;
        }
        Ok(())
    }

    /// Allocate the next request id, keeping the reserved [`TRACE_FLAG`]
    /// bit clear: a counter that grew into bit 63 would silently turn
    /// every request into a traced one, and the surprise `TraceReply`
    /// trailers would desync the pipeline. Wrapping back to 1 after
    /// 2^63−1 requests is safe — nothing that old is still in flight.
    fn alloc_id(&mut self) -> u64 {
        if self.next_id & TRACE_FLAG != 0 {
            self.next_id = 1;
        }
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Write one request and flush, without waiting for the reply.
    /// Returns the request id to match against [`NetClient::recv`].
    pub fn submit(&mut self, frame: &Frame) -> io::Result<u64> {
        let id = self.alloc_id();
        write_frame(&mut self.writer, id, frame)?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Read the next reply off the stream. Error frames come back as
    /// `Ok` here — pipelined callers need the id to know *which*
    /// request faulted; [`NetClient::call`] folds them into
    /// [`NetError::Remote`] for the synchronous path.
    pub fn recv(&mut self) -> Result<(u64, Frame), NetError> {
        match read_frame(&mut self.reader, &self.limits) {
            Ok(Some(reply)) => Ok(reply),
            Ok(None) => Err(NetError::Protocol("server closed mid-conversation".into())),
            Err(ReadError::Io(e)) => Err(NetError::Io(e)),
            Err(ReadError::Fatal(fault)) | Err(ReadError::Frame { fault, .. }) => {
                Err(NetError::Protocol(format!("unreadable reply: {fault}")))
            }
        }
    }

    /// Synchronous round trip: submit, wait for the matching reply,
    /// surface error frames as [`NetError::Remote`].
    pub fn call(&mut self, frame: &Frame) -> Result<Frame, NetError> {
        let id = self.submit(frame)?;
        let (got_id, reply) = self.recv()?;
        // Typed faults first: connection-level error frames (admission
        // refusals, fatal framing answers) arrive with request id 0,
        // and the caller needs their code — Overloaded vs ShuttingDown
        // drives backoff — not an id-mismatch complaint.
        if let Frame::Error { fault } = reply {
            return Err(NetError::Remote(fault));
        }
        if got_id != id {
            return Err(NetError::Protocol(format!(
                "reply id {got_id} for request {id}"
            )));
        }
        Ok(reply)
    }

    /// Synchronous round trip with the trace bit set on the request
    /// id: the reply plus the server's decode → queue → engine →
    /// encode breakdown from the `TraceReply` trailer. An error reply
    /// carries no trailer (the server's rule too) and surfaces as
    /// [`NetError::Remote`] exactly like [`NetClient::call`].
    pub fn call_traced(&mut self, frame: &Frame) -> Result<(Frame, TraceTimings), NetError> {
        // `alloc_id` keeps bit 63 clear, so setting it here is the
        // only way this connection ever requests a trace.
        let wire_id = self.alloc_id() | TRACE_FLAG;
        write_frame(&mut self.writer, wire_id, frame)?;
        self.writer.flush()?;
        let (got_id, reply) = self.recv()?;
        if let Frame::Error { fault } = reply {
            return Err(NetError::Remote(fault));
        }
        if got_id != wire_id {
            return Err(NetError::Protocol(format!(
                "reply id {got_id} for traced request {wire_id}"
            )));
        }
        match self.recv()? {
            (trailer_id, Frame::TraceReply { timings }) if trailer_id == wire_id => {
                Ok((reply, timings))
            }
            (trailer_id, Frame::TraceReply { .. }) => Err(NetError::Protocol(format!(
                "trailer id {trailer_id} for traced request {wire_id}"
            ))),
            (_, other) => Err(unexpected("TraceReply", &other)),
        }
    }

    /// The server's unified metrics dump: `srv.*`, `shardN.*` and any
    /// series the host registered (`swarm.*`), sorted by name. What
    /// `fleet_scrape` polls and merges across a fleet.
    pub fn metrics(&mut self) -> Result<MetricsDump, NetError> {
        match self.call(&Frame::Metrics)? {
            Frame::MetricsReply { dump } => Ok(dump),
            other => Err(unexpected("MetricsReply", &other)),
        }
    }

    /// Page the server's event journal from `since_seq`: the causal
    /// timeline behind the metrics (swaps, resyncs, overload episodes,
    /// connection churn). Poll with the returned page's `next_seq`;
    /// its `lost` count reports ring overwrites instead of hiding
    /// them. Pass 0 to read everything the ring retains.
    pub fn events(&mut self, since_seq: u64) -> Result<EventsPage, NetError> {
        match self.call(&Frame::Events { since_seq })? {
            Frame::EventsReply { page } => Ok(page),
            other => Err(unexpected("EventsReply", &other)),
        }
    }

    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Frame::Ping)? {
            Frame::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Predict every pair on the default shard (0); per-pair failures
    /// come back as typed faults in the result vector, batch-level
    /// failures as `Err`.
    pub fn query_batch(
        &mut self,
        pairs: &[(Ipv4, Ipv4)],
    ) -> Result<Vec<Result<WirePath, WireFault>>, NetError> {
        self.query_batch_on(ShardId::DEFAULT, pairs)
    }

    /// Predict every pair on one named shard.
    pub fn query_batch_on(
        &mut self,
        shard: ShardId,
        pairs: &[(Ipv4, Ipv4)],
    ) -> Result<Vec<Result<WirePath, WireFault>>, NetError> {
        let request = Frame::QueryBatch {
            shard,
            pairs: pairs.to_vec(),
        };
        match self.call(&request)? {
            Frame::PathBatch { results } => {
                if results.len() != pairs.len() {
                    return Err(NetError::Protocol(format!(
                        "{} results for {} pairs",
                        results.len(),
                        pairs.len()
                    )));
                }
                Ok(results)
            }
            other => Err(unexpected("PathBatch", &other)),
        }
    }

    /// Pipelined submission of a query batch to the default shard;
    /// pair with [`NetClient::recv`].
    pub fn submit_batch(&mut self, pairs: &[(Ipv4, Ipv4)]) -> io::Result<u64> {
        self.submit_batch_on(ShardId::DEFAULT, pairs)
    }

    /// Pipelined submission of a query batch to one named shard.
    pub fn submit_batch_on(&mut self, shard: ShardId, pairs: &[(Ipv4, Ipv4)]) -> io::Result<u64> {
        self.submit(&Frame::QueryBatch {
            shard,
            pairs: pairs.to_vec(),
        })
    }

    pub fn resolve(&mut self, ip: Ipv4) -> Result<WireResolution, NetError> {
        self.resolve_on(ShardId::DEFAULT, ip)
    }

    pub fn resolve_on(&mut self, shard: ShardId, ip: Ipv4) -> Result<WireResolution, NetError> {
        match self.call(&Frame::Resolve { shard, ip })? {
            Frame::ResolveReply { resolution } => Ok(resolution),
            other => Err(unexpected("ResolveReply", &other)),
        }
    }

    pub fn stats(&mut self) -> Result<WireStats, NetError> {
        self.stats_on(ShardId::DEFAULT)
    }

    pub fn stats_on(&mut self, shard: ShardId) -> Result<WireStats, NetError> {
        match self.call(&Frame::Stats { shard })? {
            Frame::StatsReply { stats } => Ok(stats),
            other => Err(unexpected("StatsReply", &other)),
        }
    }

    /// The default shard's serving `(epoch, day)`.
    pub fn epoch(&mut self) -> Result<(u64, u32), NetError> {
        self.epoch_on(ShardId::DEFAULT)
    }

    /// One named shard's serving `(epoch, day)`.
    pub fn epoch_on(&mut self, shard: ShardId) -> Result<(u64, u32), NetError> {
        match self.call(&Frame::Epoch { shard })? {
            Frame::EpochReply { epoch, day } => Ok((epoch, day)),
            other => Err(unexpected("EpochReply", &other)),
        }
    }

    /// Every shard the server hosts, with each one's `(epoch, day)`.
    pub fn shards(&mut self) -> Result<Vec<WireShardInfo>, NetError> {
        match self.call(&Frame::ListShards)? {
            Frame::ShardsReply { shards } => Ok(shards),
            other => Err(unexpected("ShardsReply", &other)),
        }
    }

    /// The newest full-atlas version shard 0 serves.
    pub fn atlas_head(&mut self) -> Result<AtlasVersion, NetError> {
        self.atlas_head_on(ShardId::DEFAULT)
    }

    /// The newest full-atlas version one named shard serves.
    pub fn atlas_head_on(&mut self, shard: ShardId) -> Result<AtlasVersion, NetError> {
        match self.call(&Frame::AtlasHead { shard })? {
            Frame::AtlasHeadReply { version } => Ok(version),
            other => Err(unexpected("AtlasHeadReply", &other)),
        }
    }

    /// Chunk `idx` of the full body whose head named `epoch_tag`. A
    /// server that swapped generations answers a typed `VersionRaced`
    /// fault — re-read the head and restart.
    pub fn fetch_full_chunk_on(
        &mut self,
        shard: ShardId,
        epoch_tag: u64,
        idx: u32,
    ) -> Result<AtlasChunk, NetError> {
        let request = Frame::FetchFullChunk {
            shard,
            epoch_tag,
            idx,
        };
        self.chunk_reply(&request, idx)
    }

    /// The retained delta leaving `have_day` on one named shard.
    pub fn fetch_delta_on(
        &mut self,
        shard: ShardId,
        have_day: u32,
    ) -> Result<Option<DeltaHandle>, NetError> {
        match self.call(&Frame::FetchDelta { shard, have_day })? {
            Frame::DeltaReply { handle } => Ok(handle),
            other => Err(unexpected("DeltaReply", &other)),
        }
    }

    /// Chunk `idx` of the delta body leaving `from_day`.
    pub fn fetch_delta_chunk_on(
        &mut self,
        shard: ShardId,
        from_day: u32,
        idx: u32,
    ) -> Result<AtlasChunk, NetError> {
        let request = Frame::FetchDeltaChunk {
            shard,
            from_day,
            idx,
        };
        self.chunk_reply(&request, idx)
    }

    fn chunk_reply(&mut self, request: &Frame, want_idx: u32) -> Result<AtlasChunk, NetError> {
        match self.call(request)? {
            Frame::ChunkReply { idx, crc, bytes } => {
                if idx != want_idx {
                    return Err(NetError::Protocol(format!(
                        "chunk {idx} answered a fetch of chunk {want_idx}"
                    )));
                }
                Ok(AtlasChunk { bytes, crc })
            }
            other => Err(unexpected("ChunkReply", &other)),
        }
    }

    /// Scope this connection's atlas fetching to one shard, as an
    /// owning [`AtlasSource`]: what `inano-serve --mirror` uses to
    /// bootstrap each local shard from the corresponding remote one.
    pub fn into_atlas_source(self, shard: ShardId) -> MirrorSource {
        MirrorSource {
            client: self,
            shard,
            tag: None,
        }
    }
}

// The shared bodies of the two `AtlasSource` impls (`NetClient` =
// shard 0, `MirrorSource` = any shard): one place owns the wire
// fetch/race protocol, the impls only differ in where the head tag is
// cached.

fn source_head(client: &mut NetClient, shard: ShardId) -> Result<AtlasVersion, ModelError> {
    client.atlas_head_on(shard).map_err(NetError::into_model)
}

fn source_full_chunk(
    client: &mut NetClient,
    shard: ShardId,
    tag: Option<u64>,
    idx: u32,
) -> Result<AtlasChunk, ModelError> {
    let tag = tag.ok_or_else(|| {
        ModelError::Config("fetch_full_chunk before head(): no version to fetch".into())
    })?;
    client
        .fetch_full_chunk_on(shard, tag, idx)
        .map_err(NetError::into_model)
}

fn source_delta(
    client: &mut NetClient,
    shard: ShardId,
    have_day: u32,
) -> Result<Option<DeltaHandle>, ModelError> {
    client
        .fetch_delta_on(shard, have_day)
        .map_err(NetError::into_model)
}

fn source_delta_chunk(
    client: &mut NetClient,
    shard: ShardId,
    from_day: u32,
    idx: u32,
) -> Result<AtlasChunk, ModelError> {
    client
        .fetch_delta_chunk_on(shard, from_day, idx)
        .map_err(NetError::into_model)
}

/// `NetClient` *is* an [`AtlasSource`] for the server's shard 0: plug
/// a connection straight into `INanoClient::bootstrap` /
/// `QueryEngine::bootstrap` and the atlas arrives over the wire,
/// chunked, checksummed and restartable — closing the loop of §5's
/// dissemination story. For a named shard, see
/// [`NetClient::into_atlas_source`].
impl AtlasSource for NetClient {
    fn head(&mut self) -> Result<AtlasVersion, ModelError> {
        let version = source_head(self, ShardId::DEFAULT)?;
        self.atlas_tag = Some(version.epoch_tag);
        Ok(version)
    }

    fn fetch_full_chunk(&mut self, idx: u32) -> Result<AtlasChunk, ModelError> {
        let tag = self.atlas_tag;
        source_full_chunk(self, ShardId::DEFAULT, tag, idx)
    }

    fn fetch_delta(&mut self, have_day: u32) -> Result<Option<DeltaHandle>, ModelError> {
        source_delta(self, ShardId::DEFAULT, have_day)
    }

    fn fetch_delta_chunk(&mut self, from_day: u32, idx: u32) -> Result<AtlasChunk, ModelError> {
        source_delta_chunk(self, ShardId::DEFAULT, from_day, idx)
    }
}

/// A [`NetClient`] scoped to one shard of a remote server, usable as an
/// [`AtlasSource`]: each hop of a mirror chain is one of these feeding
/// an `AtlasReader`.
pub struct MirrorSource {
    client: NetClient,
    shard: ShardId,
    /// Epoch tag of the last `head()`, which full-chunk fetches name.
    tag: Option<u64>,
}

impl MirrorSource {
    /// Connect to `addr` and scope atlas fetching to `shard`.
    pub fn connect(addr: impl ToSocketAddrs, shard: ShardId) -> io::Result<MirrorSource> {
        Ok(NetClient::connect(addr)?.into_atlas_source(shard))
    }

    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// The underlying connection (timeouts, peer address, ...).
    pub fn client(&self) -> &NetClient {
        &self.client
    }

    /// The underlying connection (epoch probes, stats, ...).
    pub fn client_mut(&mut self) -> &mut NetClient {
        &mut self.client
    }

    pub fn into_client(self) -> NetClient {
        self.client
    }
}

impl AtlasSource for MirrorSource {
    fn head(&mut self) -> Result<AtlasVersion, ModelError> {
        let version = source_head(&mut self.client, self.shard)?;
        self.tag = Some(version.epoch_tag);
        Ok(version)
    }

    fn fetch_full_chunk(&mut self, idx: u32) -> Result<AtlasChunk, ModelError> {
        source_full_chunk(&mut self.client, self.shard, self.tag, idx)
    }

    fn fetch_delta(&mut self, have_day: u32) -> Result<Option<DeltaHandle>, ModelError> {
        source_delta(&mut self.client, self.shard, have_day)
    }

    fn fetch_delta_chunk(&mut self, from_day: u32, idx: u32) -> Result<AtlasChunk, ModelError> {
        source_delta_chunk(&mut self.client, self.shard, from_day, idx)
    }
}

fn unexpected(want: &str, got: &Frame) -> NetError {
    NetError::Protocol(format!(
        "want {want}, got frame type {:#04x}",
        got.frame_type()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{ring_atlas, ring_predictor_config};
    use crate::server::{NetServer, ServerConfig};
    use inano_service::{QueryEngine, ServiceConfig};
    use std::sync::Arc;

    fn ring_server() -> NetServer {
        let engine = Arc::new(QueryEngine::new(
            Arc::new(ring_atlas(8, 0)),
            ServiceConfig {
                workers: 2,
                predictor: ring_predictor_config(),
                ..ServiceConfig::default()
            },
        ));
        NetServer::bind_single("127.0.0.1:0", engine, ServerConfig::default()).expect("bind")
    }

    /// Regression for the reserved trace bit: a client whose id
    /// counter reaches 2^63 must wrap rather than silently request a
    /// trace on every call and desync on the surprise trailers.
    #[test]
    fn id_generation_wraps_before_the_trace_bit() {
        let server = ring_server();
        let mut client = NetClient::connect(server.local_addr()).expect("connect");
        // Fast-forward the counter to the 2^63rd request.
        client.next_id = TRACE_FLAG;
        client.ping().expect("wrapped id still answers cleanly");
        assert_eq!(client.next_id, 2, "counter wrapped to 1 and advanced");
        // The stream stayed in sync: an explicitly traced call right
        // after still sees its reply + trailer pair.
        let (reply, _timings) = client.call_traced(&Frame::Ping).expect("traced ping");
        assert!(matches!(reply, Frame::Pong));
        // And a plain call after that is still in sync too.
        client.ping().expect("stream still aligned");
    }
}
