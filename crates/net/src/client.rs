//! The client library: a blocking connection to an `inano-serve`
//! instance with synchronous calls *and* pipelined batch submission.
//!
//! Every engine-touching call exists in two spellings: the plain one
//! (`query_batch`, `stats`, `epoch`, `resolve`) talks to shard 0 —
//! exactly the pre-sharding semantics — and the `_on` variant
//! (`query_batch_on`, ...) names a [`ShardId`] explicitly.
//! [`NetClient::shards`] enumerates what the server hosts.
//!
//! Pipelining is plain request ids: [`NetClient::submit`] writes a
//! request and returns immediately with its id; [`NetClient::recv`]
//! reads the next reply off the stream (the server answers in request
//! order, and every reply echoes its request's id). A loadgen keeps
//! `depth` batches in flight by submitting `depth` requests up front
//! and then re-submitting after every receive — that hides a full
//! round-trip time behind server-side work.

use crate::wire::{read_frame, write_frame, Frame, Limits, ReadError, WireFault};
use crate::wire::{WirePath, WireResolution, WireShardInfo, WireStats};
use inano_model::Ipv4;
use inano_service::ShardId;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// A client-side failure: transport, a typed server fault, or a
/// protocol violation (reply the client did not expect).
#[derive(Debug)]
pub enum NetError {
    Io(io::Error),
    /// The server answered with a typed error frame.
    Remote(WireFault),
    /// The server broke the protocol (wrong reply type, bad id...).
    Protocol(String),
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Remote(fault) => write!(f, "server fault: {fault}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

/// A connection to a server speaking the `inano-net` wire protocol.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    addr: SocketAddr,
    limits: Limits,
    next_id: u64,
}

impl NetClient {
    /// Connect with client-appropriate default limits: same
    /// `max_batch` as the server default, but a much larger receive
    /// frame bound — a `PathBatch` reply to a full `max_batch` query
    /// batch carries whole paths and can legitimately exceed the
    /// *request*-side 1 MiB default.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let reply_limits = Limits {
            max_frame_bytes: 32 << 20,
            ..Limits::default()
        };
        NetClient::connect_with(addr, reply_limits)
    }

    /// Connect with explicit limits (must admit the server's replies:
    /// a reply to a `max_batch` query batch is well over the request's
    /// size once paths are attached).
    pub fn connect_with(addr: impl ToSocketAddrs, limits: Limits) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        Ok(NetClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            addr,
            limits,
            next_id: 1,
        })
    }

    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Write one request and flush, without waiting for the reply.
    /// Returns the request id to match against [`NetClient::recv`].
    pub fn submit(&mut self, frame: &Frame) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.writer, id, frame)?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Read the next reply off the stream. Error frames come back as
    /// `Ok` here — pipelined callers need the id to know *which*
    /// request faulted; [`NetClient::call`] folds them into
    /// [`NetError::Remote`] for the synchronous path.
    pub fn recv(&mut self) -> Result<(u64, Frame), NetError> {
        match read_frame(&mut self.reader, &self.limits) {
            Ok(Some(reply)) => Ok(reply),
            Ok(None) => Err(NetError::Protocol("server closed mid-conversation".into())),
            Err(ReadError::Io(e)) => Err(NetError::Io(e)),
            Err(ReadError::Fatal(fault)) | Err(ReadError::Frame { fault, .. }) => {
                Err(NetError::Protocol(format!("unreadable reply: {fault}")))
            }
        }
    }

    /// Synchronous round trip: submit, wait for the matching reply,
    /// surface error frames as [`NetError::Remote`].
    pub fn call(&mut self, frame: &Frame) -> Result<Frame, NetError> {
        let id = self.submit(frame)?;
        let (got_id, reply) = self.recv()?;
        // Typed faults first: connection-level error frames (admission
        // refusals, fatal framing answers) arrive with request id 0,
        // and the caller needs their code — Overloaded vs ShuttingDown
        // drives backoff — not an id-mismatch complaint.
        if let Frame::Error { fault } = reply {
            return Err(NetError::Remote(fault));
        }
        if got_id != id {
            return Err(NetError::Protocol(format!(
                "reply id {got_id} for request {id}"
            )));
        }
        Ok(reply)
    }

    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Frame::Ping)? {
            Frame::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Predict every pair on the default shard (0); per-pair failures
    /// come back as typed faults in the result vector, batch-level
    /// failures as `Err`.
    pub fn query_batch(
        &mut self,
        pairs: &[(Ipv4, Ipv4)],
    ) -> Result<Vec<Result<WirePath, WireFault>>, NetError> {
        self.query_batch_on(ShardId::DEFAULT, pairs)
    }

    /// Predict every pair on one named shard.
    pub fn query_batch_on(
        &mut self,
        shard: ShardId,
        pairs: &[(Ipv4, Ipv4)],
    ) -> Result<Vec<Result<WirePath, WireFault>>, NetError> {
        let request = Frame::QueryBatch {
            shard,
            pairs: pairs.to_vec(),
        };
        match self.call(&request)? {
            Frame::PathBatch { results } => {
                if results.len() != pairs.len() {
                    return Err(NetError::Protocol(format!(
                        "{} results for {} pairs",
                        results.len(),
                        pairs.len()
                    )));
                }
                Ok(results)
            }
            other => Err(unexpected("PathBatch", &other)),
        }
    }

    /// Pipelined submission of a query batch to the default shard;
    /// pair with [`NetClient::recv`].
    pub fn submit_batch(&mut self, pairs: &[(Ipv4, Ipv4)]) -> io::Result<u64> {
        self.submit_batch_on(ShardId::DEFAULT, pairs)
    }

    /// Pipelined submission of a query batch to one named shard.
    pub fn submit_batch_on(&mut self, shard: ShardId, pairs: &[(Ipv4, Ipv4)]) -> io::Result<u64> {
        self.submit(&Frame::QueryBatch {
            shard,
            pairs: pairs.to_vec(),
        })
    }

    pub fn resolve(&mut self, ip: Ipv4) -> Result<WireResolution, NetError> {
        self.resolve_on(ShardId::DEFAULT, ip)
    }

    pub fn resolve_on(&mut self, shard: ShardId, ip: Ipv4) -> Result<WireResolution, NetError> {
        match self.call(&Frame::Resolve { shard, ip })? {
            Frame::ResolveReply { resolution } => Ok(resolution),
            other => Err(unexpected("ResolveReply", &other)),
        }
    }

    pub fn stats(&mut self) -> Result<WireStats, NetError> {
        self.stats_on(ShardId::DEFAULT)
    }

    pub fn stats_on(&mut self, shard: ShardId) -> Result<WireStats, NetError> {
        match self.call(&Frame::Stats { shard })? {
            Frame::StatsReply { stats } => Ok(stats),
            other => Err(unexpected("StatsReply", &other)),
        }
    }

    /// The default shard's serving `(epoch, day)`.
    pub fn epoch(&mut self) -> Result<(u64, u32), NetError> {
        self.epoch_on(ShardId::DEFAULT)
    }

    /// One named shard's serving `(epoch, day)`.
    pub fn epoch_on(&mut self, shard: ShardId) -> Result<(u64, u32), NetError> {
        match self.call(&Frame::Epoch { shard })? {
            Frame::EpochReply { epoch, day } => Ok((epoch, day)),
            other => Err(unexpected("EpochReply", &other)),
        }
    }

    /// Every shard the server hosts, with each one's `(epoch, day)`.
    pub fn shards(&mut self) -> Result<Vec<WireShardInfo>, NetError> {
        match self.call(&Frame::ListShards)? {
            Frame::ShardsReply { shards } => Ok(shards),
            other => Err(unexpected("ShardsReply", &other)),
        }
    }
}

fn unexpected(want: &str, got: &Frame) -> NetError {
    NetError::Protocol(format!(
        "want {want}, got frame type {:#04x}",
        got.frame_type()
    ))
}
