//! Minimal flag parsing shared by the workspace's binaries
//! (`inano-serve`, the bench loadgens): `--name value` pairs, typed by
//! the caller, defaulting on absence or parse failure.

/// Value of `--name` from `std::env::args()`, or `default` when the
/// flag is absent or its value does not parse as `T`.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
