//! Minimal flag parsing shared by the workspace's binaries
//! (`inano-serve`, the bench loadgens): `--name value` pairs, typed by
//! the caller, defaulting on absence or parse failure.

/// Value of `--name` from `std::env::args()`, or `default` when the
/// flag is absent or its value does not parse as `T`.
pub fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether the bare flag `--name` is present at all — for mode
/// switches that take no value (`net_throughput --udp`).
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Every occurrence of any flag in `names`, as `(flag, value)` pairs
/// in command-line order. This is how `inano-serve` turns repeated
/// `--atlas FILE` / `--ring N` flags into shards: the k-th occurrence
/// (of either flag) populates shard k.
///
/// A flag with a missing value (end of line, or the next token is
/// itself a flag) is a startup panic: silently dropping a shard the
/// operator asked for would surface much later as `UnknownShard`
/// faults on live clients.
pub fn repeated(names: &[&str]) -> Vec<(String, String)> {
    let args: Vec<String> = std::env::args().collect();
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if names.contains(&a.as_str()) {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => out.push((a.clone(), v.clone())),
                _ => panic!("flag {a} requires a value"),
            }
        }
    }
    out
}
