//! `inano-serve`: the standalone query server.
//!
//! Hosts one or more atlas shards behind a single listener: every
//! `--atlas FILE` (a codec-encoded atlas) or `--ring N` (a synthetic
//! ring world, for demos and smoke tests) occurrence becomes the next
//! shard, in command-line order — shard 0 first, so the first flag is
//! what shard-unaware clients talk to. With no shard flag at all it
//! serves a single 64-cluster ring. Prints one `LISTENING <addr>` line
//! once the socket is bound, then serves until killed.
//!
//! Usage:
//!   inano-serve [--bind 127.0.0.1] [--port 4711]
//!               [--atlas FILE | --ring N]...
//!               [--workers W] [--max-conns C] [--max-inflight R]
//!               [--max-frame-bytes B] [--max-batch Q]
//!
//! `--workers` is the *total* worker budget, split evenly across
//! shards by the registry.

use inano_core::PredictorConfig;
use inano_net::cli::{arg, repeated};
use inano_net::demo::{ring_atlas, ring_predictor_config};
use inano_net::{Limits, NetServer, ServerConfig};
use inano_service::{RegistryConfig, ShardId, ShardRegistry, ShardSpec};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let bind: String = arg("--bind", "127.0.0.1".to_string());
    let port: u16 = arg("--port", 4711);
    let workers: usize = arg("--workers", 0); // 0 = RegistryConfig default
    let max_conns: usize = arg("--max-conns", 256);
    let max_inflight: usize = arg("--max-inflight", ServerConfig::default().max_inflight);
    let max_frame_bytes: u32 = arg("--max-frame-bytes", Limits::default().max_frame_bytes);
    let max_batch: u32 = arg("--max-batch", Limits::default().max_batch);

    let mut shard_flags = repeated(&["--atlas", "--ring"]);
    if shard_flags.is_empty() {
        eprintln!("serving a synthetic 64-cluster ring (pass --atlas FILE or --ring N)");
        shard_flags.push(("--ring".into(), "64".into()));
    }
    let specs: Vec<ShardSpec> = shard_flags
        .iter()
        .enumerate()
        .map(|(i, (flag, value))| {
            let id = ShardId(u16::try_from(i).expect("more than 65536 shards"));
            if flag == "--ring" {
                let n: u32 = value
                    .parse()
                    .unwrap_or_else(|_| panic!("--ring {value:?} is not a cluster count"));
                eprintln!("{id}: synthetic {n}-cluster ring");
                ShardSpec {
                    id,
                    atlas: Arc::new(ring_atlas(n, 0)),
                    predictor: ring_predictor_config(),
                }
            } else {
                let bytes =
                    std::fs::read(value).unwrap_or_else(|e| panic!("read atlas {value:?}: {e}"));
                let atlas = inano_atlas::codec::decode(&bytes)
                    .unwrap_or_else(|e| panic!("decode atlas {value:?}: {e}"));
                eprintln!("{id}: atlas {value:?} (day {})", atlas.day);
                ShardSpec {
                    id,
                    atlas: Arc::new(atlas),
                    predictor: PredictorConfig::full(),
                }
            }
        })
        .collect();

    let mut reg_cfg = RegistryConfig::default();
    if workers > 0 {
        reg_cfg.total_workers = workers;
    }
    let registry =
        Arc::new(ShardRegistry::build(specs, reg_cfg).expect("build the shard registry"));

    let server = NetServer::bind(
        format!("{bind}:{port}"),
        Arc::clone(&registry),
        ServerConfig {
            max_conns,
            max_inflight,
            limits: Limits {
                max_frame_bytes,
                max_batch,
            },
        },
    )
    .expect("bind server socket");

    // The contract line smoke tests wait for; flush so a pipe sees it.
    println!("LISTENING {}", server.local_addr());
    std::io::stdout().flush().expect("flush stdout");

    loop {
        std::thread::sleep(Duration::from_secs(60));
        let c = server.counters();
        let stats = registry.stats();
        let per_shard: Vec<String> = stats
            .shards
            .iter()
            .map(|(id, s)| {
                format!(
                    "{id} epoch {} day {} ({} queries)",
                    s.epoch, s.day, s.queries
                )
            })
            .collect();
        eprintln!(
            "up: {} conns active ({} accepted, {} rejected, {} faults, {} overloaded), \
             {} queries total; {}",
            c.active,
            c.accepted,
            c.rejected,
            c.faults,
            c.overloaded,
            stats.aggregate.queries,
            per_shard.join(", "),
        );
    }
}
