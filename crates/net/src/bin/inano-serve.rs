//! `inano-serve`: the standalone query server.
//!
//! Serves a codec-encoded atlas file (`--atlas PATH`) or, for demos
//! and smoke tests, a synthetic ring world (`--ring N`). Prints one
//! `LISTENING <addr>` line once the socket is bound, then serves until
//! killed.
//!
//! Usage:
//!   inano-serve [--bind 127.0.0.1] [--port 4711]
//!               [--atlas FILE | --ring N]
//!               [--workers W] [--max-conns C]
//!               [--max-frame-bytes B] [--max-batch Q]

use inano_core::PredictorConfig;
use inano_net::cli::arg;
use inano_net::demo::{ring_atlas, ring_predictor_config};
use inano_net::{Limits, NetServer, ServerConfig};
use inano_service::{QueryEngine, ServiceConfig};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let bind: String = arg("--bind", "127.0.0.1".to_string());
    let port: u16 = arg("--port", 4711);
    let atlas_path: String = arg("--atlas", String::new());
    let ring: u32 = arg("--ring", 64);
    let workers: usize = arg("--workers", 0); // 0 = ServiceConfig default
    let max_conns: usize = arg("--max-conns", 256);
    let max_frame_bytes: u32 = arg("--max-frame-bytes", Limits::default().max_frame_bytes);
    let max_batch: u32 = arg("--max-batch", Limits::default().max_batch);

    let (atlas, predictor) = if atlas_path.is_empty() {
        eprintln!("serving a synthetic {ring}-cluster ring (pass --atlas FILE for real data)");
        (ring_atlas(ring, 0), ring_predictor_config())
    } else {
        let bytes =
            std::fs::read(&atlas_path).unwrap_or_else(|e| panic!("read atlas {atlas_path:?}: {e}"));
        let atlas = inano_atlas::codec::decode(&bytes)
            .unwrap_or_else(|e| panic!("decode atlas {atlas_path:?}: {e}"));
        eprintln!("serving atlas {atlas_path:?} (day {})", atlas.day);
        (atlas, PredictorConfig::full())
    };

    let mut svc = ServiceConfig {
        predictor,
        ..ServiceConfig::default()
    };
    if workers > 0 {
        svc.workers = workers;
    }
    let engine = Arc::new(QueryEngine::new(Arc::new(atlas), svc));

    let server = NetServer::bind(
        format!("{bind}:{port}"),
        Arc::clone(&engine),
        ServerConfig {
            max_conns,
            limits: Limits {
                max_frame_bytes,
                max_batch,
            },
        },
    )
    .expect("bind server socket");

    // The contract line smoke tests wait for; flush so a pipe sees it.
    println!("LISTENING {}", server.local_addr());
    std::io::stdout().flush().expect("flush stdout");

    loop {
        std::thread::sleep(Duration::from_secs(60));
        let c = server.counters();
        let s = engine.stats();
        eprintln!(
            "up: {} conns active ({} accepted, {} rejected, {} faults), \
             {} queries, epoch {}, day {}",
            c.active, c.accepted, c.rejected, c.faults, s.queries, s.epoch, s.day,
        );
    }
}
