//! `inano-serve`: the standalone query + dissemination server.
//!
//! Hosts one or more atlas shards behind a single listener: every
//! `--atlas FILE` (a codec-encoded atlas) or `--ring N` (a synthetic
//! ring world, for demos and smoke tests) occurrence becomes the next
//! shard, in command-line order — shard 0 first, so the first flag is
//! what shard-unaware clients talk to. With no shard flag at all it
//! serves a single 64-cluster ring. Prints one `LISTENING <addr>` line
//! once the socket is bound, then serves until killed.
//!
//! `--mirror ADDR` makes this server a *mirror*: instead of loading
//! shards from flags, it enumerates the shards of the server at `ADDR`,
//! fetches each shard's atlas over the wire (chunked, checksummed,
//! resumable), serves them under the same shard ids, and — every
//! `--refresh-ms` — pulls any daily deltas the upstream applied, so a
//! delta published at the origin propagates down a mirror chain hop by
//! hop. Every `inano-serve` serves the fetch frames, so a mirror of a
//! mirror works: the §5 swarm, spelled as a chain of ordinary servers.
//!
//! `--metrics-text ADDR` additionally serves the server's unified
//! metrics registry as Prometheus text exposition over HTTP/1.0 on
//! `ADDR` — `curl http://ADDR/metrics` from any scraper. The page ends
//! with two comment sections: the event journal's retained timeline
//! (`# EVENT seq=...`) and the drained slow-query log (`# SLOW ...`).
//! `GET /healthz` answers `ok <day> <epoch>` for shard 0, for probes
//! that only want liveness plus the served generation.
//! `--demo-swap-ms MS` applies one synthetic ring delta to shard 0
//! after `MS` milliseconds (ring worlds only), so demos and smoke
//! tests can watch a mid-run generation swap ripple through the
//! `shard0.swaps` / mirror-lag series.
//!
//! `--udp ADDR` additionally binds the datagram query plane there
//! (port 0 for ephemeral): single-shot requests one-frame-per-datagram
//! on the same event loop, worker pool and shards, for sporadic peers
//! that shouldn't pay for a connection. Prints a second
//! `LISTENING-UDP <addr>` line once bound. `--udp-rate`/`--udp-burst`
//! tune the per-source-address token bucket (datagrams per second and
//! burst; rate 0 disables shedding).
//!
//! Usage:
//!   inano-serve [--bind 127.0.0.1] [--port 4711]
//!               [--atlas FILE | --ring N]...
//!               [--mirror ADDR [--refresh-ms MS] [--predictor full|ring]]
//!               [--metrics-text ADDR] [--demo-swap-ms MS]
//!               [--udp ADDR [--udp-rate N] [--udp-burst N]]
//!               [--workers W] [--max-conns C] [--max-inflight R]
//!               [--max-request-bytes B] [--max-frame-bytes B] [--max-batch Q]
//!
//! `--workers` is the *total* worker budget, split evenly across
//! shards by the registry.

use inano_core::{AtlasReader, PredictorConfig};
use inano_net::cli::{arg, repeated};
use inano_net::demo::{ring_atlas, ring_predictor_config, ring_shortcut_delta};
use inano_net::{Limits, MirrorSource, NetClient, NetServer, ServerConfig};
use inano_obs::textserve::{render_prometheus, MetricsTextServer};
use inano_obs::EventKind;
use inano_service::{RegistryConfig, ShardId, ShardRegistry, ShardSpec};
use std::io::Write;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Load the shard set from `--atlas`/`--ring` flags (the origin path).
fn local_specs() -> Vec<ShardSpec> {
    let mut shard_flags = repeated(&["--atlas", "--ring"]);
    if shard_flags.is_empty() {
        eprintln!(
            "serving a synthetic 64-cluster ring (pass --atlas FILE, --ring N or --mirror ADDR)"
        );
        shard_flags.push(("--ring".into(), "64".into()));
    }
    shard_flags
        .iter()
        .enumerate()
        .map(|(i, (flag, value))| {
            let id = ShardId(u16::try_from(i).expect("more than 65536 shards"));
            if flag == "--ring" {
                let n: u32 = value
                    .parse()
                    .unwrap_or_else(|_| panic!("--ring {value:?} is not a cluster count"));
                eprintln!("{id}: synthetic {n}-cluster ring");
                ShardSpec {
                    id,
                    atlas: Arc::new(ring_atlas(n, 0)),
                    predictor: ring_predictor_config(),
                }
            } else {
                let bytes =
                    std::fs::read(value).unwrap_or_else(|e| panic!("read atlas {value:?}: {e}"));
                let atlas = inano_atlas::codec::decode(&bytes)
                    .unwrap_or_else(|e| panic!("decode atlas {value:?}: {e}"));
                eprintln!("{id}: atlas {value:?} (day {})", atlas.day);
                ShardSpec {
                    id,
                    atlas: Arc::new(atlas),
                    predictor: PredictorConfig::full(),
                }
            }
        })
        .collect()
}

/// Bootstrap the shard set from an upstream server (the mirror path):
/// Reads and writes on the refresh loop's upstream connections are
/// bounded: `QueryEngine::update` fetches under the engine's builder
/// lock, and a half-dead upstream must surface as a retryable error,
/// not wedge delta application forever.
const MIRROR_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A fresh upstream connection for one shard's refresh loop, I/O
/// timeout applied.
fn mirror_source(upstream: &str, id: ShardId) -> std::io::Result<MirrorSource> {
    let source = MirrorSource::connect(upstream, id)?;
    source.client().set_io_timeout(Some(MIRROR_IO_TIMEOUT))?;
    Ok(source)
}

/// When the upstream offers no delta, check whether its head moved
/// anyway — a restarted origin (empty delta log) or a mirror that
/// lagged past the upstream's retained chain — and bridge the
/// discontinuity by refetching the full atlas. Returns the new day if
/// a resync happened.
fn resync_full(
    registry: &ShardRegistry,
    id: ShardId,
    source: &mut MirrorSource,
) -> Result<Option<u32>, inano_model::ModelError> {
    use inano_core::AtlasSource;
    let head = source.head()?;
    // Same content tag = same atlas: encoding is canonical, so the
    // compare costs one cached local encode, no wire body.
    if head.epoch_tag == registry.export(id)?.epoch_tag {
        return Ok(None);
    }
    let (_, bytes, races) = AtlasReader::default().fetch_full_counted(source)?;
    if races > 0 {
        registry
            .engine(id)?
            .mirror_metrics()
            .races_recovered
            .fetch_add(races as u64, Ordering::Relaxed);
    }
    let atlas = inano_atlas::codec::decode(&bytes)?;
    // `replace_atlas` counts the full resync on the engine's own
    // mirror series.
    Ok(Some(registry.replace_atlas(id, Arc::new(atlas))?))
}

/// one wire-level atlas fetch per remote shard, same ids locally.
/// Returns the specs plus one per-shard [`MirrorSource`] for the
/// refresh loop.
fn mirrored_specs(
    upstream: &str,
    predictor: PredictorConfig,
) -> (Vec<ShardSpec>, Vec<(ShardId, MirrorSource)>) {
    let mut probe = NetClient::connect(upstream)
        .unwrap_or_else(|e| panic!("connect to --mirror {upstream}: {e}"));
    // The probe is bounded like the refresh sources: a half-dead
    // upstream must fail startup loudly, not hang before LISTENING.
    probe
        .set_io_timeout(Some(MIRROR_IO_TIMEOUT))
        .unwrap_or_else(|e| panic!("bound probe I/O to {upstream}: {e}"));
    let infos = probe
        .shards()
        .unwrap_or_else(|e| panic!("list shards of {upstream}: {e}"));
    assert!(!infos.is_empty(), "{upstream} hosts no shards");
    let reader = AtlasReader::default();
    let mut specs = Vec::new();
    let mut sources = Vec::new();
    for info in infos {
        let id = ShardId(info.shard);
        let mut source = mirror_source(upstream, id)
            .unwrap_or_else(|e| panic!("connect to --mirror {upstream} for {id}: {e}"));
        let (version, bytes) = reader
            .fetch_full(&mut source)
            .unwrap_or_else(|e| panic!("fetch {id} atlas from {upstream}: {e}"));
        let atlas = inano_atlas::codec::decode(&bytes)
            .unwrap_or_else(|e| panic!("decode {id} atlas from {upstream}: {e}"));
        eprintln!(
            "{id}: mirrored from {upstream} — day {}, tag {:#018x}, {} bytes in {} chunk(s)",
            version.day,
            version.epoch_tag,
            version.full_len,
            version.n_chunks(),
        );
        specs.push(ShardSpec {
            id,
            atlas: Arc::new(atlas),
            predictor: predictor.clone(),
        });
        sources.push((id, source));
    }
    (specs, sources)
}

fn main() {
    let bind: String = arg("--bind", "127.0.0.1".to_string());
    let port: u16 = arg("--port", 4711);
    let workers: usize = arg("--workers", 0); // 0 = RegistryConfig default
    let max_conns: usize = arg("--max-conns", 256);
    let max_inflight: usize = arg("--max-inflight", ServerConfig::default().max_inflight);
    let max_request_bytes: usize = arg(
        "--max-request-bytes",
        ServerConfig::default().max_request_bytes,
    );
    let max_frame_bytes: u32 = arg("--max-frame-bytes", Limits::default().max_frame_bytes);
    let max_batch: u32 = arg("--max-batch", Limits::default().max_batch);
    let mirror: String = arg("--mirror", String::new());
    let refresh_ms: u64 = arg("--refresh-ms", 1000);
    let metrics_text: String = arg("--metrics-text", String::new());
    let demo_swap_ms: u64 = arg("--demo-swap-ms", 0);
    let udp: String = arg("--udp", String::new());
    let udp_rate: u32 = arg("--udp-rate", ServerConfig::default().udp_rate);
    let udp_burst: u32 = arg("--udp-burst", ServerConfig::default().udp_burst);
    let udp = (!udp.is_empty()).then(|| {
        use std::net::ToSocketAddrs;
        udp.to_socket_addrs()
            .unwrap_or_else(|e| panic!("--udp {udp:?}: {e}"))
            .next()
            .unwrap_or_else(|| panic!("--udp {udp:?} names no address"))
    });

    let (specs, mirror_sources) = if mirror.is_empty() {
        (local_specs(), Vec::new())
    } else {
        assert!(
            repeated(&["--atlas", "--ring"]).is_empty(),
            "--mirror replaces --atlas/--ring: the shard set comes from the upstream"
        );
        // A mirror cannot know how the origin's atlases were built;
        // --predictor picks the profile (`ring` for the demo worlds).
        let predictor = match arg("--predictor", "full".to_string()).as_str() {
            "ring" => ring_predictor_config(),
            _ => PredictorConfig::full(),
        };
        mirrored_specs(&mirror, predictor)
    };

    let mut reg_cfg = RegistryConfig::default();
    if workers > 0 {
        reg_cfg.total_workers = workers;
    }
    let registry =
        Arc::new(ShardRegistry::build(specs, reg_cfg).expect("build the shard registry"));

    let server = NetServer::bind(
        format!("{bind}:{port}"),
        Arc::clone(&registry),
        ServerConfig {
            max_conns,
            max_inflight,
            max_request_bytes,
            limits: Limits {
                max_frame_bytes,
                max_batch,
            },
            udp,
            udp_rate,
            udp_burst,
        },
    )
    .expect("bind server socket");

    // The refresh loop: poll the upstream for daily deltas and land
    // them on the local shards; downstream mirrors then fetch the same
    // deltas from *us* (the engine retains what it applies). Spawned
    // after the bind so failures can land on the server's event
    // journal — serving starts at bind either way.
    if !mirror_sources.is_empty() && refresh_ms > 0 {
        let registry = Arc::clone(&registry);
        let journal = Arc::clone(server.journal());
        let upstream = mirror.clone();
        std::thread::Builder::new()
            .name("inano-mirror-refresh".into())
            .spawn(move || {
                let mut sources = mirror_sources;
                loop {
                    std::thread::sleep(Duration::from_millis(refresh_ms));
                    for (id, source) in &mut sources {
                        match registry.update(*id, source) {
                            // No delta to pull — the common idle tick,
                            // unless the upstream's head moved without
                            // a bridging delta (restart, or we lagged
                            // past its retained chain): then refetch
                            // the full atlas rather than serving a
                            // stale generation forever.
                            Ok(0) => match resync_full(&registry, *id, source) {
                                Ok(None) => {}
                                Ok(Some(day)) => eprintln!(
                                    "{id}: upstream head moved without a delta; \
                                     re-bootstrapped the full atlas, now day {day}"
                                ),
                                Err(e) => {
                                    eprintln!("{id}: resync check failed: {e}; reconnecting");
                                    journal.emit(
                                        EventKind::MirrorRefreshFailed,
                                        format!("{id} resync: {e}"),
                                    );
                                    match mirror_source(&upstream, *id) {
                                        Ok(fresh) => *source = fresh,
                                        Err(e) => {
                                            eprintln!("{id}: reconnect failed (will retry): {e}")
                                        }
                                    }
                                }
                            },
                            Ok(n) => eprintln!(
                                "{id}: pulled {n} delta(s) from upstream, now day {}",
                                registry.epoch(*id).map(|(_, d)| d).unwrap_or(0)
                            ),
                            Err(e) => {
                                // Any failure may have left the
                                // connection dead or torn mid-frame
                                // (upstream restart, I/O timeout);
                                // retrying on the same socket would
                                // fail forever, so rebuild it. Serving
                                // continues on the last good atlas
                                // either way.
                                eprintln!("{id}: refresh failed: {e}; reconnecting upstream");
                                journal.emit(
                                    EventKind::MirrorRefreshFailed,
                                    format!("{id} refresh: {e}"),
                                );
                                match mirror_source(&upstream, *id) {
                                    Ok(fresh) => *source = fresh,
                                    Err(e) => {
                                        eprintln!("{id}: reconnect failed (will retry): {e}")
                                    }
                                }
                            }
                        }
                    }
                }
            })
            .expect("spawn mirror refresh thread");
    }

    // The scrape plane: the same registry dump the wire's `Metrics`
    // frame answers, rendered as Prometheus text for anything that
    // speaks HTTP instead of the inano protocol, with the event
    // journal's retained timeline and the drained slow-query log
    // appended as comment sections. `/healthz` answers liveness plus
    // the shard-0 generation for probes that don't parse metrics.
    let _metrics_text = if metrics_text.is_empty() {
        None
    } else {
        let obs = Arc::clone(server.metrics());
        let journal = Arc::clone(server.journal());
        let slow = Arc::clone(server.slow_log());
        let reg = Arc::clone(&registry);
        let http = MetricsTextServer::bind(metrics_text.as_str(), move |path| match path {
            "/healthz" => {
                let (epoch, day) = reg.epoch(ShardId(0)).unwrap_or((0, 0));
                Some(format!("ok {day} {epoch}\n"))
            }
            p if p == "/" || p.starts_with("/metrics") => {
                let mut body = render_prometheus(&obs.dump());
                let page = journal.since(0);
                body.push_str(&format!(
                    "# EVENTS retained={} lost={} next_seq={}\n",
                    page.events.len(),
                    page.lost,
                    page.next_seq
                ));
                for e in &page.events {
                    body.push_str(&format!(
                        "# EVENT seq={} t_ms={} kind={} detail={:?}\n",
                        e.seq,
                        e.t_ms,
                        e.kind.name(),
                        e.detail
                    ));
                }
                for s in slow.drain() {
                    body.push_str(&format!(
                        "# SLOW latency_us={} what={:?}\n",
                        s.latency_us, s.what
                    ));
                }
                Some(body)
            }
            _ => None,
        })
        .expect("bind --metrics-text socket");
        eprintln!("metrics-text: http://{}/metrics", http.local_addr());
        Some(http)
    };

    if demo_swap_ms > 0 {
        let registry = Arc::clone(&registry);
        // The delta is built against the ring world of the first
        // --ring flag (default ring when no shard flag was given).
        let ring_n: u32 = repeated(&["--atlas", "--ring"])
            .first()
            .filter(|(flag, _)| flag == "--ring")
            .and_then(|(_, value)| value.parse().ok())
            .unwrap_or(64);
        std::thread::Builder::new()
            .name("inano-demo-swap".into())
            .spawn(move || {
                std::thread::sleep(Duration::from_millis(demo_swap_ms));
                let day = registry.epoch(ShardId(0)).map(|(_, d)| d).unwrap_or(0);
                match registry.apply_delta(ShardId(0), &ring_shortcut_delta(ring_n, day)) {
                    Ok(day) => eprintln!("demo swap: shard 0 advanced to day {day}"),
                    Err(e) => eprintln!("demo swap failed (ring worlds only): {e}"),
                }
            })
            .expect("spawn demo swap thread");
    }

    // The contract line smoke tests wait for; flush so a pipe sees it.
    println!("LISTENING {}", server.local_addr());
    if let Some(udp_addr) = server.udp_addr() {
        // Scripts binding `--udp` to port 0 read the real port here.
        println!("LISTENING-UDP {udp_addr}");
    }
    std::io::stdout().flush().expect("flush stdout");

    loop {
        std::thread::sleep(Duration::from_secs(60));
        let c = server.counters();
        let stats = registry.stats();
        let per_shard: Vec<String> = stats
            .shards
            .iter()
            .map(|(id, s)| {
                format!(
                    "{id} epoch {} day {} ({} queries)",
                    s.epoch, s.day, s.queries
                )
            })
            .collect();
        eprintln!(
            "up: {} conns active ({} accepted, {} rejected, {} faults, {} overloaded), \
             {} queries total; {}",
            c.active,
            c.accepted,
            c.rejected,
            c.faults,
            c.overloaded,
            stats.aggregate.queries,
            per_shard.join(", "),
        );
    }
}
