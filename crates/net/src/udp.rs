//! The datagram-plane client: one request frame per UDP datagram, one
//! reply datagram back, no connection and no per-peer server state.
//!
//! This is the transport the paper's deployment shape wants: millions
//! of thin peers each asking *rarely*, where a TCP handshake and a
//! held socket dwarf the work of answering. A [`UdpQuerier`] binds an
//! ephemeral socket, `connect`s it to the server's `--udp` address
//! (so the kernel filters foreign sources and surfaces ICMP errors),
//! and drives single-shot calls:
//!
//! * **Request-id matching** — every reply echoes its request's id;
//!   anything else on the socket (a late reply to an earlier attempt,
//!   a duplicate, garbage) is discarded and counted, never an error.
//! * **Timeout + capped exponential backoff** — datagrams are
//!   best-effort, so the querier resends on silence: the attempt
//!   timeout doubles from [`UdpRetry::timeout`] up to
//!   [`UdpRetry::max_timeout`], for at most [`UdpRetry::attempts`]
//!   sends. Every servable request frame is idempotent (queries
//!   change no server state), which is what makes blind resending
//!   safe — at worst the server answers twice and the second reply is
//!   discarded as stale.
//! * **Typed faults surface, they are not retried** — a server that
//!   answers `Overloaded` (the per-source shed) or `NotOnDatagram`
//!   said something; hammering it with retries would say nothing
//!   back.
//!
//! Only the single-shot subset travels here (`Ping`, `QueryBatch`,
//! `Resolve`, `Stats`, `Epoch`, `AtlasHead`); chunked atlas fetches
//! and the introspection pages keep the stream transport,
//! [`crate::client::NetClient`].

use crate::client::NetError;
use crate::wire::{decode_datagram, DatagramError, Frame, Limits, MAX_UDP_PAYLOAD, TRACE_FLAG};
use crate::wire::{WireFault, WirePath, WireResolution, WireStats};
use inano_core::AtlasVersion;
use inano_model::Ipv4;
use inano_service::ShardId;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::{Duration, Instant};

/// Retry policy of a [`UdpQuerier`] call.
#[derive(Clone, Copy, Debug)]
pub struct UdpRetry {
    /// First attempt's reply window.
    pub timeout: Duration,
    /// Ceiling the per-attempt window doubles up to.
    pub max_timeout: Duration,
    /// Total send attempts (first send included) before the call
    /// fails with a timed-out [`NetError::Io`].
    pub attempts: u32,
}

impl Default for UdpRetry {
    fn default() -> UdpRetry {
        UdpRetry {
            timeout: Duration::from_millis(250),
            max_timeout: Duration::from_secs(2),
            attempts: 5,
        }
    }
}

/// A handle on a server's datagram plane. See the module docs.
pub struct UdpQuerier {
    socket: UdpSocket,
    peer: SocketAddr,
    limits: Limits,
    retry: UdpRetry,
    next_id: u64,
    buf: Vec<u8>,
    stale_replies: u64,
    resends: u64,
}

impl UdpQuerier {
    /// Bind an ephemeral local socket and point it at a server's
    /// `--udp` address. No packet is exchanged — a datagram "connect"
    /// only pins the peer — so this succeeding says nothing about the
    /// server being up; the first call's retries find that out.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<UdpQuerier> {
        let peer = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address to query"))?;
        let bind: SocketAddr = if peer.is_ipv4() {
            "0.0.0.0:0".parse().expect("literal addr")
        } else {
            "[::]:0".parse().expect("literal addr")
        };
        let socket = UdpSocket::bind(bind)?;
        socket.connect(peer)?;
        Ok(UdpQuerier {
            socket,
            peer,
            // A reply datagram can never exceed the UDP payload cap,
            // so the stream client's 32 MiB allowance is meaningless
            // here; the default frame limit already admits anything
            // that can arrive.
            limits: Limits::default(),
            retry: UdpRetry::default(),
            next_id: 1,
            buf: vec![0; MAX_UDP_PAYLOAD],
            stale_replies: 0,
            resends: 0,
        })
    }

    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    pub fn set_retry(&mut self, retry: UdpRetry) {
        self.retry = retry;
    }

    /// Replies discarded for not matching the in-flight request id:
    /// late answers to resent attempts, duplicates, undecodable
    /// datagrams. Healthy retry traffic, surfaced for tests and
    /// curiosity.
    pub fn stale_replies(&self) -> u64 {
        self.stale_replies
    }

    /// Datagrams re-sent after a silent reply window.
    pub fn resends(&self) -> u64 {
        self.resends
    }

    /// Next id with the reserved [`TRACE_FLAG`] bit kept clear — the
    /// same wrap rule as the stream client, see the wire contract.
    fn alloc_id(&mut self) -> u64 {
        if self.next_id & TRACE_FLAG != 0 {
            self.next_id = 1;
        }
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// One single-shot exchange: send `frame`, collect the
    /// id-matching reply, resending on silence per the retry policy.
    /// Typed error replies surface as [`NetError::Remote`].
    pub fn call(&mut self, frame: &Frame) -> Result<Frame, NetError> {
        let id = self.alloc_id();
        let request = frame.encode(id);
        if request.len() > MAX_UDP_PAYLOAD {
            return Err(NetError::Protocol(format!(
                "request of {} bytes cannot ride one datagram",
                request.len()
            )));
        }
        let mut window = self.retry.timeout;
        for attempt in 0..self.retry.attempts.max(1) {
            if attempt > 0 {
                self.resends += 1;
            }
            // A send can fail fast with the kernel's note of an
            // earlier ICMP port-unreachable; that is this attempt's
            // answer, wait out the window and try again.
            let sent = self.socket.send(&request).is_ok();
            if !sent {
                std::thread::sleep(window.min(Duration::from_millis(50)));
                window = (window * 2).min(self.retry.max_timeout.max(self.retry.timeout));
                continue;
            }
            let deadline = Instant::now() + window;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                self.socket.set_read_timeout(Some(remaining))?;
                let n = match self.socket.recv(&mut self.buf) {
                    Ok(n) => n,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                        // ICMP says nobody is listening right now
                        // (mid-restart, say). Sit out a slice of the
                        // window rather than spinning on the error.
                        std::thread::sleep(remaining.min(Duration::from_millis(50)));
                        continue;
                    }
                    Err(e) => return Err(NetError::Io(e)),
                };
                match decode_datagram(&self.buf[..n], &self.limits) {
                    Ok((got_id, reply)) if got_id == id => {
                        if let Frame::Error { fault } = reply {
                            return Err(NetError::Remote(fault));
                        }
                        return Ok(reply);
                    }
                    // A reply to some other id: late or duplicated by
                    // an earlier attempt. Idempotency makes discarding
                    // the only correct move.
                    Ok(_) | Err(DatagramError::Drop(_) | DatagramError::Fault { .. }) => {
                        self.stale_replies += 1;
                    }
                }
            }
            window = (window * 2).min(self.retry.max_timeout.max(self.retry.timeout));
        }
        Err(NetError::Io(io::Error::new(
            io::ErrorKind::TimedOut,
            format!(
                "no reply from {} after {} datagram attempts",
                self.peer,
                self.retry.attempts.max(1)
            ),
        )))
    }

    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Frame::Ping)? {
            Frame::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Predict every pair on the default shard in one datagram
    /// round trip. The *reply* must fit one datagram too — keep
    /// batches to a few hundred pairs and the server's typed
    /// `FrameTooLarge` fault will tell you if a topology's paths
    /// outgrow that.
    pub fn query_batch(
        &mut self,
        pairs: &[(Ipv4, Ipv4)],
    ) -> Result<Vec<Result<WirePath, WireFault>>, NetError> {
        self.query_batch_on(ShardId::DEFAULT, pairs)
    }

    /// Predict every pair on one named shard.
    pub fn query_batch_on(
        &mut self,
        shard: ShardId,
        pairs: &[(Ipv4, Ipv4)],
    ) -> Result<Vec<Result<WirePath, WireFault>>, NetError> {
        let request = Frame::QueryBatch {
            shard,
            pairs: pairs.to_vec(),
        };
        match self.call(&request)? {
            Frame::PathBatch { results } => {
                if results.len() != pairs.len() {
                    return Err(NetError::Protocol(format!(
                        "{} results for {} pairs",
                        results.len(),
                        pairs.len()
                    )));
                }
                Ok(results)
            }
            other => Err(unexpected("PathBatch", &other)),
        }
    }

    pub fn resolve(&mut self, ip: Ipv4) -> Result<WireResolution, NetError> {
        self.resolve_on(ShardId::DEFAULT, ip)
    }

    pub fn resolve_on(&mut self, shard: ShardId, ip: Ipv4) -> Result<WireResolution, NetError> {
        match self.call(&Frame::Resolve { shard, ip })? {
            Frame::ResolveReply { resolution } => Ok(resolution),
            other => Err(unexpected("ResolveReply", &other)),
        }
    }

    pub fn stats(&mut self) -> Result<WireStats, NetError> {
        self.stats_on(ShardId::DEFAULT)
    }

    pub fn stats_on(&mut self, shard: ShardId) -> Result<WireStats, NetError> {
        match self.call(&Frame::Stats { shard })? {
            Frame::StatsReply { stats } => Ok(stats),
            other => Err(unexpected("StatsReply", &other)),
        }
    }

    /// The default shard's serving `(epoch, day)`.
    pub fn epoch(&mut self) -> Result<(u64, u32), NetError> {
        self.epoch_on(ShardId::DEFAULT)
    }

    /// One named shard's serving `(epoch, day)`.
    pub fn epoch_on(&mut self, shard: ShardId) -> Result<(u64, u32), NetError> {
        match self.call(&Frame::Epoch { shard })? {
            Frame::EpochReply { epoch, day } => Ok((epoch, day)),
            other => Err(unexpected("EpochReply", &other)),
        }
    }

    /// The newest full-atlas version shard 0 serves — the datagram way
    /// to notice "my atlas is stale" before opening a stream to fetch.
    pub fn atlas_head(&mut self) -> Result<AtlasVersion, NetError> {
        self.atlas_head_on(ShardId::DEFAULT)
    }

    /// The newest full-atlas version one named shard serves.
    pub fn atlas_head_on(&mut self, shard: ShardId) -> Result<AtlasVersion, NetError> {
        match self.call(&Frame::AtlasHead { shard })? {
            Frame::AtlasHeadReply { version } => Ok(version),
            other => Err(unexpected("AtlasHeadReply", &other)),
        }
    }
}

fn unexpected(want: &str, got: &Frame) -> NetError {
    NetError::Protocol(format!(
        "want {want}, got frame type {:#04x}",
        got.frame_type()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_generation_wraps_before_the_trace_bit() {
        // Pure id-allocator check; the wire behaviour is covered by
        // the integration tests.
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let peer = socket.local_addr().expect("addr");
        let mut q = UdpQuerier::connect(peer).expect("connect");
        q.next_id = TRACE_FLAG;
        assert_eq!(q.alloc_id(), 1);
        assert_eq!(q.alloc_id(), 2);
        assert_eq!(q.next_id & TRACE_FLAG, 0);
    }

    #[test]
    fn oversized_request_is_refused_locally() {
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let peer = socket.local_addr().expect("addr");
        let mut q = UdpQuerier::connect(peer).expect("connect");
        // 16k pairs × 8 bytes ≈ 128 KiB: over any datagram.
        let pairs = vec![(Ipv4(1), Ipv4(2)); 16_384];
        match q.query_batch(&pairs) {
            Err(NetError::Protocol(msg)) => assert!(msg.contains("datagram")),
            other => panic!("want a local protocol refusal, got {other:?}"),
        }
    }
}
