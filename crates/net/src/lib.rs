//! # inano-net
//!
//! The network front end over `inano-service`: what turns the paper's
//! per-peer library into a deployable service a remote peer can query
//! without embedding the predictor or the atlas.
//!
//! Three layers, separable and individually tested:
//!
//! * [`wire`] — a compact length-prefixed binary protocol, version 5
//!   (magic, version, request id, typed frames: `QueryBatch`,
//!   `Resolve`, `Stats`, `Epoch` — each carrying an optional shard id,
//!   default shard 0 — plus `ListShards`, `Ping`, the atlas
//!   dissemination frames `AtlasHead`/`FetchFullChunk`/`FetchDelta`/
//!   `FetchDeltaChunk`, the observability frames `Metrics`/
//!   `MetricsReply`/`TraceReply` with the [`wire::TRACE_FLAG`]
//!   request-id bit opting a request into a stage-timing trailer, the
//!   event-journal frames `Events`/`EventsReply` paging the server's
//!   causal timeline, and typed error frames carrying
//!   [`inano_model::ErrorCode`]s), with receiver-side [`Limits`] on
//!   frame and batch size — v3/v4 clients interoperate unchanged;
//! * [`server`] — an event-driven TCP server ([`NetServer`], shipped
//!   as the `inano-serve` binary): one epoll readiness loop carrying
//!   every connection (tens of thousands of mostly-idle peers fit in
//!   one process) over a worker pool answering requests, hosting a
//!   whole
//!   [`inano_service::ShardRegistry`] of independent atlas shards
//!   behind one listener, with per-connection request pipelining
//!   bounded by an in-flight cap, a server-wide request-memory budget
//!   shared across connections (excess gets typed `Overloaded`
//!   errors either way), a max-connection admission gate, and graceful
//!   shutdown; each frame routes to the engine of the shard it names,
//!   so remote queries ride that shard's cache and hot-swap semantics
//!   exactly like embedded ones — and each shard's encoded atlas and
//!   retained deltas are served back out in bounded chunks, making
//!   every server a mirror;
//! * [`client`] — [`NetClient`], synchronous calls plus pipelined
//!   batch submission (`submit_batch`/`recv`), shard-aware via the
//!   `_on` variants and `shards()`, which is what `inano-bench`'s
//!   `net_throughput` loadgen drives. `NetClient` (shard 0) and
//!   [`MirrorSource`] (any shard) implement
//!   [`inano_core::AtlasSource`], so a remote server plugs into
//!   `INanoClient::bootstrap`/`QueryEngine::bootstrap` like any local
//!   source — the §5 dissemination loop, closed.
//!
//! [`udp`] is the datagram plane's client half: with
//! `ServerConfig::udp` set (the `inano-serve --udp` flag) the same
//! server answers single-shot requests one-frame-per-datagram on the
//! same event loop and worker pool, with zero per-peer state;
//! [`UdpQuerier`] drives it with id-matched replies, capped-backoff
//! retries and late/duplicate-reply discard — the transport for the
//! paper's millions of rarely-asking peers.
//!
//! [`demo`] carries the tiny ring world the `inano-serve --ring` mode,
//! the integration tests and the loadgen's `--connect` mode share.
//!
//! See DESIGN.md ("The wire protocol") for framing, pipelining,
//! limits and versioning.

pub mod cli;
pub mod client;
pub mod demo;
pub mod server;
pub mod udp;
pub mod wire;

pub use client::{MirrorSource, NetClient, NetError};
pub use server::{raise_nofile_limit, NetServer, ServerConfig, ServerCounters};
pub use udp::{UdpQuerier, UdpRetry};
pub use wire::{
    chunk_size_for, datagram_cap, Frame, Limits, WireFault, WirePath, WireResolution,
    WireShardInfo, WireStats, MAX_UDP_PAYLOAD, TRACE_FLAG,
};

/// Re-exported so `inano-net` users can name shards without a direct
/// `inano-service` dependency.
pub use inano_service::ShardId;
