//! # inano-net
//!
//! The network front end over `inano-service`: what turns the paper's
//! per-peer library into a deployable service a remote peer can query
//! without embedding the predictor or the atlas.
//!
//! Three layers, separable and individually tested:
//!
//! * [`wire`] — a compact length-prefixed binary protocol (magic,
//!   version, request id, typed frames: `QueryBatch`, `Resolve`,
//!   `Stats`, `Epoch`, `Ping`, plus typed error frames carrying
//!   [`inano_model::ErrorCode`]s), with receiver-side [`Limits`] on
//!   frame and batch size;
//! * [`server`] — a threaded TCP server ([`NetServer`], shipped as the
//!   `inano-serve` binary) with per-connection request pipelining, a
//!   max-connection admission gate, and graceful shutdown, fanning
//!   decoded batches into a shared [`inano_service::QueryEngine`] so
//!   remote queries ride the same cache and hot-swap semantics as
//!   embedded ones;
//! * [`client`] — [`NetClient`], synchronous calls plus pipelined
//!   batch submission (`submit_batch`/`recv`), which is what
//!   `inano-bench`'s `net_throughput` loadgen drives.
//!
//! [`demo`] carries the tiny ring world the `inano-serve --ring` mode,
//! the integration tests and the loadgen's `--connect` mode share.
//!
//! See DESIGN.md ("The wire protocol") for framing, pipelining,
//! limits and versioning.

pub mod cli;
pub mod client;
pub mod demo;
pub mod server;
pub mod wire;

pub use client::{NetClient, NetError};
pub use server::{NetServer, ServerConfig, ServerCounters};
pub use wire::{Frame, Limits, WireFault, WirePath, WireResolution, WireStats};
