//! The threaded TCP server: accept loop + one handler thread per
//! connection, all requests fanned into a shared [`QueryEngine`].
//!
//! ## Concurrency model
//!
//! `std::net` blocking I/O throughout — one OS thread per connection,
//! which is the right trade at the scale the admission gate allows
//! (hundreds of connections, each pipelining batches; the *query*
//! parallelism lives in the engine's worker pool, not here). Handler
//! threads call [`QueryEngine::query_batch`] directly, so remote
//! batches share the result cache, the worker pool and the hot-swap
//! semantics with embedded callers: a mid-load `apply_delta` never
//! stalls remote queries, and the first frame decoded after a swap is
//! answered from the new epoch.
//!
//! ## Admission and limits
//!
//! * At most [`ServerConfig::max_conns`] concurrent connections; the
//!   gate answers excess connects with a typed `Overloaded` error
//!   frame and closes, so clients fail fast instead of queueing.
//! * Frames are bounded by [`Limits`]: an oversized declared payload
//!   or broken framing is answered once and the connection closed
//!   (the stream can no longer be trusted); a parse failure inside a
//!   well-framed payload is answered with a typed error and the
//!   connection keeps serving — a pipelined client loses one request,
//!   not the stream.
//!
//! ## Shutdown
//!
//! [`NetServer::shutdown`] (also run on drop) stops the accept loop
//! with a self-connect, force-closes the registered connection
//! sockets so blocked reads return, and joins every thread. The
//! engine is shared and is *not* shut down — that's its owner's call.

use crate::wire::{read_frame, write_frame, Frame, Limits, ReadError, WireFault};
use crate::wire::{WirePath, WireResolution, WireStats};
use inano_model::ErrorCode;
use inano_service::QueryEngine;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Concurrent-connection admission gate.
    pub max_conns: usize,
    /// Per-frame protocol limits.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_conns: 256,
            limits: Limits::default(),
        }
    }
}

/// Counters for observability and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerCounters {
    /// Connections currently being served.
    pub active: usize,
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections refused by the admission gate.
    pub rejected: u64,
    /// Frames answered with an error (fatal or per-frame).
    pub faults: u64,
}

struct Shared {
    engine: Arc<QueryEngine>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    accepted: AtomicU64,
    rejected: AtomicU64,
    faults: AtomicU64,
    /// Clones of live connection sockets, so shutdown can unblock
    /// their reader threads.
    streams: Mutex<HashMap<u64, TcpStream>>,
    handlers: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// A running server; dropping it shuts it down.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Mutex<Option<thread::JoinHandle<()>>>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving `engine`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<QueryEngine>,
        cfg: ServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            cfg,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            streams: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("inano-net-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            shared,
            addr,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound address (the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server fronts (shared; `apply_delta` through
    /// this handle is visible to remote queries immediately).
    pub fn engine(&self) -> &Arc<QueryEngine> {
        &self.shared.engine
    }

    pub fn counters(&self) -> ServerCounters {
        ServerCounters {
            active: self.shared.active.load(Ordering::Relaxed),
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            faults: self.shared.faults.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, close every live connection, join all threads.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop; it checks the flag before serving.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.lock().take() {
            let _ = h.join();
        }
        for (_, s) in self.shared.streams.lock().drain() {
            let _ = s.shutdown(Shutdown::Both);
        }
        let handlers: Vec<_> = self.shared.handlers.lock().drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut next_id = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept failures (fd exhaustion, say) must
                // not busy-spin a core; back off and say why.
                eprintln!("inano-net: accept failed, retrying: {e}");
                thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        // Reap finished handler threads so a long-lived server with
        // connection churn doesn't accumulate JoinHandles forever.
        shared.handlers.lock().retain(|h| !h.is_finished());
        if shared.shutdown.load(Ordering::SeqCst) {
            // Answer a genuine late client rather than hanging it; the
            // shutdown self-connect just gets dropped.
            let _ = refuse(stream, ErrorCode::ShuttingDown, "server is shutting down");
            return;
        }
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_conns {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            shared.faults.fetch_add(1, Ordering::Relaxed);
            let _ = refuse(
                stream,
                ErrorCode::Overloaded,
                format!("connection limit {} reached", shared.cfg.max_conns),
            );
            continue;
        }
        // A connection we cannot register is one shutdown cannot
        // unblock later (its handler would block in read forever and
        // hang the join); refuse it rather than serve it.
        let clone = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                shared.faults.fetch_add(1, Ordering::Relaxed);
                let _ = refuse(
                    stream,
                    ErrorCode::Overloaded,
                    "cannot register connection (out of descriptors?)",
                );
                continue;
            }
        };
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        let conn_id = next_id;
        next_id += 1;
        shared.streams.lock().insert(conn_id, clone);
        let worker = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("inano-net-conn-{conn_id}"))
                .spawn(move || {
                    let _ = serve_connection(&stream, &shared);
                    shared.streams.lock().remove(&conn_id);
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                })
                .expect("spawn connection handler")
        };
        shared.handlers.lock().push(worker);
    }
}

/// Send a single error frame on a connection we won't serve, then close.
fn refuse(stream: TcpStream, code: ErrorCode, message: impl Into<String>) -> io::Result<()> {
    let mut w = BufWriter::new(&stream);
    write_frame(
        &mut w,
        0,
        &Frame::Error {
            fault: WireFault::new(code, message),
        },
    )?;
    w.flush()?;
    stream.shutdown(Shutdown::Both)
}

/// Serve one connection until EOF, a fatal framing error, or shutdown.
fn serve_connection(stream: &TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        match read_frame(&mut reader, &shared.cfg.limits) {
            Ok(Some((request_id, frame))) => {
                let reply = respond(&shared.engine, &frame);
                if matches!(reply, Frame::Error { .. }) {
                    shared.faults.fetch_add(1, Ordering::Relaxed);
                }
                write_frame(&mut writer, request_id, &reply)?;
                writer.flush()?;
            }
            Ok(None) => return Ok(()),
            Err(ReadError::Io(e)) => return Err(e),
            Err(ReadError::Fatal(fault)) => {
                shared.faults.fetch_add(1, Ordering::Relaxed);
                write_frame(&mut writer, 0, &Frame::Error { fault })?;
                writer.flush()?;
                return Ok(());
            }
            Err(ReadError::Frame { request_id, fault }) => {
                shared.faults.fetch_add(1, Ordering::Relaxed);
                write_frame(&mut writer, request_id, &Frame::Error { fault })?;
                writer.flush()?;
            }
        }
    }
}

/// Map one decoded request to its reply frame.
fn respond(engine: &QueryEngine, frame: &Frame) -> Frame {
    match frame {
        Frame::Ping => Frame::Pong,
        Frame::QueryBatch { pairs } => Frame::PathBatch {
            results: engine
                .query_batch(pairs)
                .iter()
                .map(|r| match r {
                    Ok(p) => Ok(WirePath::from(p)),
                    Err(e) => Err(WireFault::from(e)),
                })
                .collect(),
        },
        Frame::Resolve { ip } => match engine.generation().predictor.resolve(*ip) {
            Ok(r) => Frame::ResolveReply {
                resolution: WireResolution::from(&r),
            },
            Err(e) => Frame::Error {
                fault: WireFault::from(&e),
            },
        },
        Frame::Stats => Frame::StatsReply {
            stats: WireStats::from(&engine.stats()),
        },
        Frame::Epoch => {
            let generation = engine.generation();
            Frame::EpochReply {
                epoch: generation.epoch,
                day: generation.day(),
            }
        }
        // Reply-direction (or error) frames are not requests.
        Frame::Pong
        | Frame::PathBatch { .. }
        | Frame::ResolveReply { .. }
        | Frame::StatsReply { .. }
        | Frame::EpochReply { .. }
        | Frame::Error { .. } => Frame::Error {
            fault: WireFault::new(
                ErrorCode::UnexpectedFrame,
                format!("frame type {:#04x} is not a request", frame.frame_type()),
            ),
        },
    }
}
