//! The event-driven TCP server: one epoll-based readiness loop owning
//! every connection, a small worker pool answering decoded requests,
//! all requests routed through a shared [`ShardRegistry`] to the shard
//! each frame names.
//!
//! ## Concurrency model
//!
//! Nonblocking I/O throughout, driven by a oneshot [`polling::Poller`]
//! (the vendored epoll stand-in). A single loop thread accepts
//! connections and owns every connection's state: an incremental
//! [`FrameAssembler`] carrying partial frames across readiness events,
//! a pending-work queue, and a write queue of encoded replies drained
//! as the socket accepts them. Completed requests are handed to a
//! fixed worker pool — one in-service request per connection at a
//! time, so replies stay in request order — and each worker's encoded
//! reply comes back to the loop through a completion list plus
//! [`Poller::notify`]. The *query* parallelism still lives in each
//! shard engine's worker pool: workers call
//! [`QueryEngine::query_batch`] on the frame's shard directly, so
//! remote batches share that shard's result cache, worker pool and
//! hot-swap semantics with embedded callers, and a mid-load
//! `apply_delta` on one shard never stalls remote queries on another.
//!
//! Two threads per connection was the old model; it capped the server
//! near the thread limit and cost ~16KiB of stack per idle peer. The
//! event loop holds an idle connection for the price of its assembler
//! (a few hundred bytes), so tens of thousands of mostly-idle peers —
//! the fleet dissemination fan-out — fit in one process.
//!
//! ## Admission and limits
//!
//! * At most [`ServerConfig::max_conns`] concurrent connections; the
//!   gate answers excess connects with a typed `Overloaded` error
//!   frame and closes, so clients fail fast instead of queueing.
//! * At most [`ServerConfig::max_inflight`] decoded requests queued
//!   per connection. A pipeliner that outruns the workers gets a
//!   typed `Overloaded` error *per excess request* — replies still in
//!   request order, the connection still serving — instead of the
//!   server buffering an unbounded backlog. Once a connection's
//!   pending queue is full the loop additionally stops *reading* it
//!   (its read interest is dropped until the queue drains), so a
//!   flood is absorbed by TCP backpressure, not by server memory.
//! * On top of the per-connection cap, one *server-wide* request-memory
//!   budget ([`ServerConfig::max_request_bytes`]) shared by every
//!   connection: each queued request reserves its estimated heap cost
//!   and releases it once answered, so many connections pipelining
//!   concurrently cannot multiply the per-connection bound into an OOM.
//!   A request that would breach the budget is answered with the same
//!   typed `Overloaded` error, in order, on a connection that keeps
//!   serving.
//! * A slow-consuming client cannot balloon the write queue either:
//!   once a connection's queued reply bytes pass [`write_backlog_cap`]
//!   (derived from the frame limit), the loop stops dispatching its
//!   requests to workers until the client drains what it already owes.
//! * Frames are bounded by [`Limits`]: an oversized declared payload
//!   or broken framing is answered once and the connection closed
//!   (the stream can no longer be trusted); a parse failure inside a
//!   well-framed payload is answered with a typed error and the
//!   connection keeps serving — a pipelined client loses one request,
//!   not the stream.
//!
//! ## Observability
//!
//! Every server carries an [`inano_obs::MetricsRegistry`]
//! ([`NetServer::metrics`]): the raw `srv.*` listener counters, the
//! event-loop's own `srv.loop.*` series (poll wakeups, ready events
//! per wake, registered descriptors, queued write-backlog bytes) and a
//! per-shard collector over the registry (`shardN.*` engine, cache and
//! mirror series, including the `shardN.latency_us` histogram) are
//! folded into one dump answered over the wire (`Frame::Metrics`) and
//! rendered by the `--metrics-text` endpoint. A request id with the
//! [`TRACE_FLAG`] bit set gets a `TraceReply` trailer after its
//! (non-error) reply carrying the decode → queue → engine → encode
//! breakdown, and every request is offered to a slow-query ring
//! ([`NetServer::slow_log`]) keyed on its worker-side latency.
//! Alongside the counters runs the event journal
//! ([`NetServer::journal`], paged by `Frame::Events`): connection
//! accept/close, overload episode open/close (edge-triggered — a
//! burst of rejections is two events), and — via
//! [`QueryEngine::set_journal`] wiring at bind — every shard's
//! generation swaps, delta applications, full resyncs and recovered
//! races, all on one monotonically sequenced timeline.
//!
//! ## The datagram plane
//!
//! With [`ServerConfig::udp`] set, the same loop also owns one UDP
//! socket: one request frame per datagram, answered in one datagram,
//! with **zero per-peer server state** — no assembler, no write queue,
//! no slab slot. A datagram decodes (or faults) in the loop, rides the
//! same dispatch queue to the same workers and the same
//! [`respond`]/[`ShardRegistry`] path as a stream request, and the
//! worker sends the reply straight back with `send_to` (UDP replies
//! have no ordering contract, so no completion round-trip is needed).
//! Only the single-shot request subset is servable — `Ping`,
//! `QueryBatch`, `Resolve`, `Stats`, `Epoch`, `AtlasHead`; stream-only
//! frames (chunk fetches, metrics/events pages) get a typed
//! `NotOnDatagram` fault. A reply that would not fit one datagram
//! ([`datagram_cap`]) is replaced by a typed `FrameTooLarge` fault.
//! Admission is a per-source-address token bucket
//! ([`ServerConfig::udp_rate`]): over-rate sources get typed
//! `Overloaded` faults, and far-over-rate sources get silence — a
//! typed reply to every spoofed datagram would make the socket a
//! reflection amplifier. All of it is counted under `srv.udp.*`.
//!
//! ## Shutdown
//!
//! [`NetServer::shutdown`] (also run on drop) sets the flag, wakes the
//! loop through the poller's notify pipe and the workers through their
//! queue condvar, and joins every thread; the loop sweeps its live
//! connections closed on the way out. The registry is shared and is
//! *not* shut down — that's its owner's call.

use crate::wire::{chunk_size_for, datagram_cap, decode_datagram, DatagramError};
use crate::wire::{write_frame, Assembled, Frame, FrameAssembler, Limits};
use crate::wire::{WireFault, WirePath, WireResolution, WireShardInfo, WireStats};
use crate::wire::{HEADER_BYTES, MAGIC, MIN_VERSION, TRACE_FLAG, VERSION};
use inano_model::{ErrorCode, ModelError};
use inano_obs::{
    EventJournal, EventKind, LatencyHistogram, MetricValue, MetricsRegistry, SlowLog, TraceCtx,
};
use inano_service::{QueryEngine, ShardRegistry};
use parking_lot::Mutex;
use polling::{Event, Events, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufWriter, Read, Write};
use std::net::{IpAddr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs, UdpSocket};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, Weak};
use std::thread;
use std::time::{Duration, Instant};

/// Entries the slow-query ring retains (oldest overwritten first).
const SLOW_LOG_CAPACITY: usize = 128;

/// Default worker-side latency past which a request is logged as
/// slow; retune live via [`NetServer::slow_log`].
const SLOW_LOG_THRESHOLD_US: u64 = 10_000;

/// Events the journal ring retains. Sized for minutes of fleet churn
/// between scrapes; a lapped scraper sees a `lost` count, never a gap
/// it can't detect.
const EVENT_JOURNAL_CAPACITY: usize = 1024;

/// The poller key carrying the listener; connection keys are slab
/// slots counting up from 0 and can never reach it (`usize::MAX`
/// itself is the poller's own notify pipe).
const LISTENER_KEY: usize = usize::MAX - 1;

/// The poller key carrying the UDP socket, when the datagram plane is
/// enabled.
const UDP_KEY: usize = usize::MAX - 2;

/// Most datagrams one readiness event drains before the socket is
/// re-armed — the datagram analogue of [`READ_ROUNDS_PER_EVENT`], so
/// a datagram flood cannot starve the stream connections of the loop.
const UDP_ROUNDS_PER_EVENT: usize = 64;

/// Source-address entries the datagram token-bucket table holds
/// before inactive sources are swept.
const UDP_BUCKETS_CAP: usize = 8192;

/// Bytes the loop reads per `read()` call into its reusable scratch
/// buffer.
const READ_CHUNK: usize = 64 * 1024;

/// Most `read()` rounds one readiness event is allowed before the
/// loop moves to the next connection. Leftover socket data re-fires
/// on re-arm (the registration is level-triggered under the oneshot),
/// so this caps per-event latency without losing data — fairness
/// against a firehose peer.
const READ_ROUNDS_PER_EVENT: usize = 4;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Concurrent-connection admission gate.
    pub max_conns: usize,
    /// Most decoded requests queued per connection; a pipeliner
    /// exceeding it gets typed `Overloaded` errors for the excess.
    pub max_inflight: usize,
    /// Server-wide request-memory budget, bytes: the estimated heap
    /// cost of every queued-but-unanswered request across *all*
    /// connections. Breaching it answers the excess request with a
    /// typed `Overloaded` error. `usize::MAX` disables the budget.
    pub max_request_bytes: usize,
    /// Per-frame protocol limits.
    pub limits: Limits,
    /// Bind the datagram plane here too (port 0 for ephemeral); `None`
    /// serves the stream transport only.
    pub udp: Option<SocketAddr>,
    /// Datagrams per second each source address may send before the
    /// token bucket sheds it with typed `Overloaded` faults (and,
    /// far past the rate, silence). `0` disables the bucket.
    pub udp_rate: u32,
    /// Burst allowance of the per-source bucket, datagrams.
    pub udp_burst: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_conns: 256,
            max_inflight: 128,
            max_request_bytes: 256 << 20,
            limits: Limits::default(),
            udp: None,
            udp_rate: 20_000,
            udp_burst: 2_048,
        }
    }
}

/// Queued reply bytes per connection past which the loop stops
/// dispatching that connection's requests to workers: a slow consumer
/// pays for its own backlog in stalled service, not server memory.
/// Derived from the frame limit (two max-size frames, at least 1MiB)
/// rather than configured, so the config surface stays put.
fn write_backlog_cap(cfg: &ServerConfig) -> usize {
    (cfg.limits.max_frame_bytes as usize)
        .saturating_mul(2)
        .max(1 << 20)
}

/// Counters for observability and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerCounters {
    /// Connections currently being served.
    pub active: usize,
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections refused by the admission gate.
    pub rejected: u64,
    /// Frames answered with an error (fatal or per-frame); does NOT
    /// include in-flight rejections, which are healthy throttling and
    /// counted in `overloaded` alone.
    pub faults: u64,
    /// Pipelined requests refused by the per-connection in-flight cap.
    pub overloaded: u64,
}

/// One unit of work handed from the loop to a worker.
struct Job {
    target: JobTarget,
    work: Work,
}

/// Where a worker's answer goes.
enum JobTarget {
    /// A stream connection: the encoded reply travels back to the
    /// loop as a [`Completion`] and joins the connection's write
    /// queue, keeping replies in request order.
    Conn {
        /// Slab slot of the owning connection.
        key: usize,
        /// The connection's generation when dispatched; a completion
        /// whose generation no longer matches the slot's occupant is
        /// dropped (the connection died, the slot may be reused).
        gen: u64,
    },
    /// A datagram request: the worker `send_to`s the reply itself —
    /// one datagram, no ordering contract, no per-peer state to
    /// return to.
    Datagram { peer: SocketAddr },
}

/// A worker's finished answer travelling back to the loop.
struct Completion {
    key: usize,
    gen: u64,
    /// The encoded reply frame (plus trace trailer when owed).
    bytes: Vec<u8>,
    /// True after a fatal framing fault: write what's queued, then
    /// close.
    close: bool,
}

/// The loop→worker dispatch queue. `std::sync` (not `parking_lot`)
/// because the workers need a condvar to park on.
struct Dispatch {
    queue: StdMutex<VecDeque<Job>>,
    cv: Condvar,
}

impl Dispatch {
    fn new() -> Dispatch {
        Dispatch {
            queue: StdMutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        self.queue.lock().expect("dispatch lock").push_back(job);
        self.cv.notify_one();
    }

    /// Block for the next job; `None` once shutdown is flagged. The
    /// flag is checked under the queue lock, so a `wake_all` can never
    /// slip between the check and the park.
    fn pop(&self, shutdown: &AtomicBool) -> Option<Job> {
        let mut q = self.queue.lock().expect("dispatch lock");
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            q = self.cv.wait(q).expect("dispatch lock");
        }
    }

    fn wake_all(&self) {
        let _guard = self.queue.lock().expect("dispatch lock");
        self.cv.notify_all();
    }
}

struct Shared {
    registry: Arc<ShardRegistry>,
    obs: Arc<MetricsRegistry>,
    slow: Arc<SlowLog>,
    journal: Arc<EventJournal>,
    /// True while the server is inside an overload episode: set by the
    /// first shed (admission refusal, in-flight cap, memory budget),
    /// cleared by the first request served normally afterwards. The
    /// transitions — not every shed — land in the journal, so a burst
    /// of ten thousand rejections is two events, not ten thousand.
    overloaded_now: AtomicBool,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    /// Estimated bytes of queued-but-unanswered requests, across every
    /// connection (see [`ServerConfig::max_request_bytes`]). `Arc`ed
    /// because each queued request's [`Claim`] owns a handle: claims
    /// ride inside `Work` to the workers and release wherever they
    /// drop.
    request_bytes: Arc<AtomicUsize>,
    /// High-water mark of `request_bytes` over the server's lifetime
    /// (the `srv.request_bytes_peak` gauge).
    request_bytes_peak: AtomicUsize,
    accepted: AtomicU64,
    rejected: AtomicU64,
    faults: AtomicU64,
    overloaded: AtomicU64,
    /// Failed `accept()` calls (fd exhaustion, say) — each engages the
    /// accept backoff rather than hot-spinning the loop.
    accept_retries: AtomicU64,
    /// Times the event loop returned from `poller.wait`.
    loop_wakeups: AtomicU64,
    /// Descriptors currently registered with the poller (connections,
    /// the listener, the notify pipe).
    loop_fds: AtomicUsize,
    /// Encoded reply bytes queued server-wide, not yet accepted by
    /// client sockets.
    write_backlog: AtomicU64,
    /// Ready events delivered per `poller.wait` return, log₂-bucketed
    /// (attached to the registry as `srv.loop.ready_events`).
    ready_events: Arc<LatencyHistogram>,
    /// The epoll instance; workers touch it only through `notify`.
    poller: Poller,
    /// The datagram plane, when enabled: the socket (workers reply on
    /// it directly) and its counters.
    udp: Option<UdpPlane>,
    dispatch: Dispatch,
    /// Finished answers awaiting the loop; pushed by workers, drained
    /// after each `notify`-triggered wakeup.
    completions: StdMutex<Vec<Completion>>,
}

impl Shared {
    /// Record one shed request/connection, opening an overload episode
    /// if none is running.
    fn note_shed(&self, why: &str) {
        if !self.overloaded_now.swap(true, Ordering::Relaxed) {
            self.journal.emit(EventKind::OverloadStart, why);
        }
    }

    /// Record a normally served request, closing any open episode.
    fn note_served(&self) {
        if self.overloaded_now.swap(false, Ordering::Relaxed) {
            self.journal.emit(EventKind::OverloadEnd, "");
        }
    }
}

/// The datagram plane's socket and counters (the `srv.udp.*` family).
struct UdpPlane {
    socket: UdpSocket,
    addr: SocketAddr,
    /// Datagrams received, decodable or not.
    datagrams_in: AtomicU64,
    /// Reply datagrams actually handed to the kernel.
    datagrams_out: AtomicU64,
    /// Datagrams dropped without a reply: unattributable garbage
    /// (short/bad header) or kernel-truncated frames.
    truncated: AtomicU64,
    /// Datagrams refused by the per-source token bucket (typed
    /// `Overloaded` reply or, deep in a flood, silence).
    shed: AtomicU64,
    /// Replies that exceeded [`datagram_cap`] and were replaced by a
    /// typed `FrameTooLarge` fault.
    oversize_reply: AtomicU64,
}

/// A running server; dropping it shuts it down.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving every shard in `registry` behind this one listener.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<ShardRegistry>,
        cfg: ServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        widen_accept_backlog(&listener);
        let addr = listener.local_addr()?;
        let obs = Arc::new(MetricsRegistry::new());
        let journal = Arc::new(EventJournal::new(EVENT_JOURNAL_CAPACITY));
        // Hand every shard engine the journal so swaps, deltas and
        // resyncs land on the same timeline as the listener's events.
        for (id, engine) in registry.iter() {
            engine.set_journal(Arc::clone(&journal), format!("shard{}", id.raw()));
        }
        let ready_events = Arc::new(LatencyHistogram::default());
        obs.attach_histogram("srv.loop.ready_events", Arc::clone(&ready_events));
        let poller = Poller::new()?;
        // Safety (here and for every connection add): the loop keeps
        // each registered source alive until it deletes it, and the
        // poller outlives them all inside `Shared`.
        unsafe { poller.add(&listener, Event::readable(LISTENER_KEY))? };
        let udp = match cfg.udp {
            Some(udp_addr) => {
                let socket = UdpSocket::bind(udp_addr)?;
                socket.set_nonblocking(true)?;
                let addr = socket.local_addr()?;
                // Safety: the socket lives in `Shared` alongside the
                // poller, which outlives it.
                unsafe { poller.add(&socket, Event::readable(UDP_KEY))? };
                Some(UdpPlane {
                    socket,
                    addr,
                    datagrams_in: AtomicU64::new(0),
                    datagrams_out: AtomicU64::new(0),
                    truncated: AtomicU64::new(0),
                    shed: AtomicU64::new(0),
                    oversize_reply: AtomicU64::new(0),
                })
            }
            None => None,
        };
        let udp_fds = usize::from(udp.is_some());
        let shared = Arc::new(Shared {
            registry,
            obs,
            slow: Arc::new(SlowLog::new(SLOW_LOG_CAPACITY, SLOW_LOG_THRESHOLD_US)),
            journal,
            overloaded_now: AtomicBool::new(false),
            cfg,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            request_bytes: Arc::new(AtomicUsize::new(0)),
            request_bytes_peak: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            accept_retries: AtomicU64::new(0),
            loop_wakeups: AtomicU64::new(0),
            // The listener, the poller's notify pipe, and the UDP
            // socket when bound.
            loop_fds: AtomicUsize::new(2 + udp_fds),
            write_backlog: AtomicU64::new(0),
            ready_events,
            poller,
            udp,
            dispatch: Dispatch::new(),
            completions: StdMutex::new(Vec::new()),
        });
        attach_server_collector(&shared);
        attach_shard_collector(&shared.obs, &shared.registry);
        let workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(4);
        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name(format!("inano-net-respond-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn responder"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                thread::Builder::new()
                    .name("inano-net-loop".into())
                    .spawn(move || EventLoop::new(listener, shared).run())
                    .expect("spawn event loop"),
            );
        }
        Ok(NetServer {
            shared,
            addr,
            threads: Mutex::new(threads),
        })
    }

    /// Bind a single-shard server over one engine: the pre-sharding
    /// API, byte-for-byte the old semantics behind shard 0.
    pub fn bind_single(
        addr: impl ToSocketAddrs,
        engine: Arc<QueryEngine>,
        cfg: ServerConfig,
    ) -> io::Result<NetServer> {
        NetServer::bind(addr, Arc::new(ShardRegistry::single(engine)), cfg)
    }

    /// The bound address (the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The datagram plane's bound address (the real port when
    /// [`ServerConfig::udp`] named port 0); `None` when the plane is
    /// disabled.
    pub fn udp_addr(&self) -> Option<SocketAddr> {
        self.shared.udp.as_ref().map(|u| u.addr)
    }

    /// The shard registry this server fronts (shared; `apply_delta`
    /// on a shard through this handle is visible to remote queries
    /// immediately, and only on that shard).
    pub fn registry(&self) -> &Arc<ShardRegistry> {
        &self.shared.registry
    }

    /// The server's unified metrics registry: `srv.*` listener series
    /// plus collector-fed `shardN.*` engine/cache/mirror series. The
    /// same dump answers `Frame::Metrics` on the wire and feeds the
    /// `--metrics-text` endpoint; callers may register their own
    /// series (the swarm layer does).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.obs
    }

    /// The slow-query ring: every request's worker-side latency is
    /// offered to it; entries over the threshold are retained top-K
    /// and drained by operators.
    pub fn slow_log(&self) -> &Arc<SlowLog> {
        &self.shared.slow
    }

    /// The server's event journal: the causal timeline behind the
    /// counters. Shard engines emit their swap/delta/resync events
    /// into it, the listener adds connection churn and overload
    /// episodes, and `Frame::Events` pages it over the wire. Callers
    /// (the mirror refresh loop, the swarm layer) may emit their own.
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.shared.journal
    }

    pub fn counters(&self) -> ServerCounters {
        ServerCounters {
            active: self.shared.active.load(Ordering::Relaxed),
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            faults: self.shared.faults.load(Ordering::Relaxed),
            overloaded: self.shared.overloaded.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, close every live connection, join all threads.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the loop out of `poller.wait` and the workers off the
        // dispatch condvar; both check the flag before doing anything
        // else.
        let _ = self.shared.poller.notify();
        self.shared.dispatch.wake_all();
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for h in threads {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Re-issue `listen(2)` with a wide backlog. The standard library
/// listens with a backlog of 128, which a connection storm (thousands
/// of peers reconnecting after a restart) overflows in milliseconds —
/// overflow means dropped SYNs and whole seconds of client-side
/// retransmit stalls. Linux lets a second `listen` on a live socket
/// update the backlog in place (still capped by
/// `net.core.somaxconn`). Best-effort: a failure leaves the standard
/// backlog, which every test worked under for years.
fn widen_accept_backlog(listener: &TcpListener) {
    extern "C" {
        fn listen(fd: i32, backlog: i32) -> i32;
    }
    unsafe {
        let _ = listen(listener.as_raw_fd(), 4096);
    }
}

/// Raise this process's open-file soft limit (`RLIMIT_NOFILE`) toward
/// `target`, returning the soft limit actually in force afterwards.
/// Raising past the hard cap needs privilege; without it this settles
/// for the hard cap. Benchmarks holding tens of thousands of sockets
/// call this; the server itself never does.
pub fn raise_nofile_limit(target: u64) -> u64 {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_NOFILE: i32 = 7;
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    unsafe {
        let mut have = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut have) != 0 {
            return 0;
        }
        if have.cur >= target {
            return have.cur;
        }
        let want = RLimit {
            cur: target,
            max: have.max.max(target),
        };
        if setrlimit(RLIMIT_NOFILE, &want) == 0 {
            return want.cur;
        }
        // Unprivileged: the hard cap is the best we can get.
        let capped = RLimit {
            cur: have.max,
            max: have.max,
        };
        if have.cur < have.max && setrlimit(RLIMIT_NOFILE, &capped) == 0 {
            return have.max;
        }
        have.cur
    }
}

/// Fold the listener's raw counters into the metrics registry as
/// `srv.*` series at dump time. Holding only a [`Weak`] breaks the
/// `Shared` → registry → collector cycle, so dropping the server still
/// frees it.
fn attach_server_collector(shared: &Arc<Shared>) {
    let weak: Weak<Shared> = Arc::downgrade(shared);
    shared.obs.register_collector(move |out| {
        let Some(s) = weak.upgrade() else { return };
        let counter = |v: &AtomicU64| MetricValue::Counter(v.load(Ordering::Relaxed));
        out.push(("srv.accepted".into(), counter(&s.accepted)));
        out.push(("srv.rejected".into(), counter(&s.rejected)));
        out.push(("srv.faults".into(), counter(&s.faults)));
        out.push(("srv.overloaded".into(), counter(&s.overloaded)));
        out.push(("srv.accept_retries".into(), counter(&s.accept_retries)));
        out.push(("srv.loop.wakeups".into(), counter(&s.loop_wakeups)));
        let gauge = |v: usize| MetricValue::Gauge(v as u64);
        out.push(("srv.active".into(), gauge(s.active.load(Ordering::Relaxed))));
        out.push((
            "srv.loop.fds".into(),
            gauge(s.loop_fds.load(Ordering::Relaxed)),
        ));
        out.push((
            "srv.loop.write_backlog_bytes".into(),
            MetricValue::Gauge(s.write_backlog.load(Ordering::Relaxed)),
        ));
        out.push((
            "srv.request_bytes".into(),
            gauge(s.request_bytes.load(Ordering::Relaxed)),
        ));
        out.push((
            "srv.request_bytes_peak".into(),
            gauge(s.request_bytes_peak.load(Ordering::Relaxed)),
        ));
        // One past the newest journal seq: a scraper whose cursor
        // trails this by more than the ring capacity knows it lost
        // events even without issuing an `Events` request.
        out.push((
            "srv.events_head".into(),
            MetricValue::Gauge(s.journal.head_seq()),
        ));
        if let Some(udp) = s.udp.as_ref() {
            out.push(("srv.udp.datagrams_in".into(), counter(&udp.datagrams_in)));
            out.push(("srv.udp.datagrams_out".into(), counter(&udp.datagrams_out)));
            out.push(("srv.udp.truncated".into(), counter(&udp.truncated)));
            out.push(("srv.udp.shed".into(), counter(&udp.shed)));
            out.push((
                "srv.udp.oversize_reply".into(),
                counter(&udp.oversize_reply),
            ));
        }
    });
}

/// Snapshot every shard's engine, cache and mirror series as
/// `shardN.*` at dump time — no per-request bookkeeping beyond what
/// the engines already keep, so serving pays nothing for this.
fn attach_shard_collector(obs: &MetricsRegistry, registry: &Arc<ShardRegistry>) {
    let registry = Arc::clone(registry);
    obs.register_collector(move |out| {
        for (id, engine) in registry.iter() {
            let n = id.raw();
            let stats = engine.stats();
            let mirror = engine.mirror_stats();
            out.push((
                format!("shard{n}.queries"),
                MetricValue::Counter(stats.queries),
            ));
            out.push((
                format!("shard{n}.errors"),
                MetricValue::Counter(stats.errors),
            ));
            out.push((format!("shard{n}.swaps"), MetricValue::Counter(stats.swaps)));
            out.push((
                format!("shard{n}.cache.hits"),
                MetricValue::Counter(stats.cache_hits),
            ));
            out.push((
                format!("shard{n}.cache.misses"),
                MetricValue::Counter(stats.cache_misses),
            ));
            out.push((
                format!("shard{n}.cache.evictions"),
                MetricValue::Counter(stats.cache_evictions),
            ));
            out.push((format!("shard{n}.epoch"), MetricValue::Gauge(stats.epoch)));
            out.push((
                format!("shard{n}.day"),
                MetricValue::Gauge(stats.day as u64),
            ));
            out.push((
                format!("shard{n}.latency_us"),
                MetricValue::Histogram(stats.latency_buckets),
            ));
            out.push((
                format!("shard{n}.mirror.deltas_applied"),
                MetricValue::Counter(mirror.deltas_applied),
            ));
            out.push((
                format!("shard{n}.mirror.full_resyncs"),
                MetricValue::Counter(mirror.full_resyncs),
            ));
            out.push((
                format!("shard{n}.mirror.races_recovered"),
                MetricValue::Counter(mirror.races_recovered),
            ));
            out.push((
                format!("shard{n}.mirror.lag_days"),
                MetricValue::Gauge(mirror.lag_days as u64),
            ));
            out.push((
                format!("shard{n}.mirror.upstream_day"),
                MetricValue::Gauge(mirror.upstream_day as u64),
            ));
        }
    });
}

/// Send a single error frame on a connection we won't serve, then close.
fn refuse(stream: TcpStream, code: ErrorCode, message: impl Into<String>) -> io::Result<()> {
    let mut w = BufWriter::new(&stream);
    write_frame(
        &mut w,
        0,
        &Frame::Error {
            fault: WireFault::new(code, message),
        },
    )?;
    w.flush()?;
    stream.shutdown(Shutdown::Both)
}

/// A reservation against the server-wide request-memory pool, released
/// on drop — whichever path the queued request leaves by (answered,
/// queue torn down on disconnect, ...), the bytes come back. Owns its
/// pool handle so it can travel with the request to a worker thread.
struct Claim {
    bytes: usize,
    pool: Arc<AtomicUsize>,
}

impl Drop for Claim {
    fn drop(&mut self) {
        self.pool.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// Reserve `bytes` against the shared pool, or `None` on breach.
fn try_claim(pool: &Arc<AtomicUsize>, budget: usize, bytes: usize) -> Option<Claim> {
    if budget == usize::MAX {
        return Some(Claim {
            bytes: 0,
            pool: Arc::clone(pool),
        });
    }
    let prev = pool.fetch_add(bytes, Ordering::Relaxed);
    if prev.saturating_add(bytes) > budget {
        pool.fetch_sub(bytes, Ordering::Relaxed);
        return None;
    }
    Some(Claim {
        bytes,
        pool: Arc::clone(pool),
    })
}

/// Estimated heap cost of holding one decoded request in the in-flight
/// queue. Every variable-size variant must be charged — the decoder
/// accepts reply-typed frames as inbound too (they queue until a
/// worker answers `UnexpectedFrame`), so a hostile client shipping
/// megabyte `ChunkReply`/`PathBatch` frames has to pay the budget for
/// them like any legitimate batch.
fn frame_cost(frame: &Frame) -> usize {
    const BASE: usize = 128;
    BASE + match frame {
        Frame::QueryBatch { pairs, .. } => pairs.len() * std::mem::size_of::<(u32, u32)>(),
        Frame::PathBatch { results } => results
            .iter()
            .map(|r| match r {
                Ok(p) => {
                    64 + 4
                        * (p.fwd_clusters.len()
                            + p.rev_clusters.len()
                            + p.fwd_as.len()
                            + p.rev_as.len())
                }
                Err(fault) => 64 + fault.message.len(),
            })
            .sum(),
        Frame::ChunkReply { bytes, .. } => bytes.len(),
        Frame::StatsReply { stats } => 64 + stats.latency_buckets.len() * 8,
        Frame::MetricsReply { dump } => dump
            .entries
            .iter()
            .map(|(name, value)| {
                48 + name.len()
                    + match value {
                        MetricValue::Histogram(buckets) => buckets.len() * 8,
                        MetricValue::Counter(_) | MetricValue::Gauge(_) => 8,
                    }
            })
            .sum(),
        Frame::ShardsReply { shards } => shards.len() * std::mem::size_of::<WireShardInfo>(),
        Frame::EventsReply { page } => page.events.iter().map(|e| 64 + e.detail.len()).sum(),
        Frame::Error { fault } => fault.message.len(),
        _ => 0,
    }
}

/// One unit queued on a connection awaiting its turn with a worker.
/// Workers answer strictly in queue order, which is read order — so
/// replies (rejections included) keep the pipelining contract.
enum Work {
    /// A decoded request to serve, holding its memory-budget claim
    /// until answered.
    Request {
        request_id: u64,
        frame: Frame,
        claim: Claim,
        /// Live when the request id carried [`TRACE_FLAG`]: the stage
        /// clock that becomes the `TraceReply` trailer.
        trace: Option<TraceCtx>,
    },
    /// Read but refused: the in-flight cap or the server-wide memory
    /// budget was hit. Carrying only the id keeps a rejected backlog
    /// O(1) memory per request.
    Reject {
        request_id: u64,
        reason: &'static str,
    },
    /// The payload was framed soundly but does not parse.
    Fault { request_id: u64, fault: WireFault },
    /// The stream desynchronised: answer once (id 0) and close. Always
    /// the assembler's last word.
    Fatal { fault: WireFault },
}

/// Exponential backoff for failed `accept()` calls: while engaged the
/// listener stays disarmed and the loop's `wait` gets a deadline, so
/// persistent failure (fd exhaustion, say) costs one retry per delay
/// instead of a spinning core. Any successful accept resets it.
struct AcceptBackoff {
    delay: Duration,
    until: Option<Instant>,
}

impl AcceptBackoff {
    const START: Duration = Duration::from_millis(10);
    const CAP: Duration = Duration::from_secs(2);

    fn new() -> AcceptBackoff {
        AcceptBackoff {
            delay: AcceptBackoff::START,
            until: None,
        }
    }

    /// Start (or extend) a backoff window from `now`, doubling the
    /// next window up to the cap.
    fn engage(&mut self, now: Instant) {
        self.until = Some(now + self.delay);
        self.delay = (self.delay * 2).min(AcceptBackoff::CAP);
    }

    fn reset(&mut self) {
        self.delay = AcceptBackoff::START;
        self.until = None;
    }

    /// The poll timeout an engaged backoff imposes (`None` = no
    /// backoff, block freely).
    fn timeout(&self, now: Instant) -> Option<Duration> {
        self.until.map(|u| u.saturating_duration_since(now))
    }

    /// True once the window has elapsed (clearing it): time to re-arm
    /// the listener.
    fn expired(&mut self, now: Instant) -> bool {
        match self.until {
            Some(u) if now >= u => {
                self.until = None;
                true
            }
            _ => false,
        }
    }
}

/// Encoded replies a connection's socket hasn't accepted yet, drained
/// front-first as writability allows.
#[derive(Default)]
struct WriteQueue {
    bufs: VecDeque<Vec<u8>>,
    /// Bytes of `bufs.front()` already written.
    off: usize,
    /// Total unwritten bytes across `bufs`.
    bytes: usize,
}

/// Everything the loop knows about one live connection.
struct Conn {
    stream: TcpStream,
    /// Monotonic across all connections ever; guards completions
    /// against slot reuse.
    gen: u64,
    /// Journal identity (`conn={id}` in accept/close events).
    id: u64,
    asm: FrameAssembler,
    /// Decoded work awaiting its turn with a worker, in read order.
    pending: VecDeque<Work>,
    /// `Work::Request`s in `pending` plus the in-service one — the
    /// population the `max_inflight` cap bounds.
    queued_requests: usize,
    /// A job for this connection is at a worker (or queued for one);
    /// at most one at a time keeps replies in request order.
    in_service: bool,
    /// That job is a `Work::Request` (so its completion decrements
    /// `queued_requests`).
    in_service_request: bool,
    wq: WriteQueue,
    /// No more bytes will be read: EOF, read error, or a fatal
    /// framing fault. The connection lives on until its queues drain.
    read_closed: bool,
}

/// The readiness loop: owns the listener, the connection slab, and
/// all socket I/O. Runs on one thread until shutdown.
struct EventLoop {
    shared: Arc<Shared>,
    listener: TcpListener,
    /// Connection slab; the vector index is the poller key.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
    next_conn_id: u64,
    backoff: AcceptBackoff,
    scratch: Vec<u8>,
    /// Per-source admission state for the datagram plane. Lives on
    /// the loop (its only toucher), not in `Shared`.
    udp_buckets: UdpBuckets,
}

impl EventLoop {
    fn new(listener: TcpListener, shared: Arc<Shared>) -> EventLoop {
        let udp_buckets = UdpBuckets::new(shared.cfg.udp_rate, shared.cfg.udp_burst);
        EventLoop {
            shared,
            listener,
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            next_conn_id: 0,
            backoff: AcceptBackoff::new(),
            // Scratch doubles as the datagram receive buffer, so it
            // must hold the largest possible UDP payload.
            scratch: vec![0; READ_CHUNK.max(crate::wire::MAX_UDP_PAYLOAD)],
            udp_buckets,
        }
    }

    fn run(mut self) {
        let mut events = Events::new();
        loop {
            let timeout = self.backoff.timeout(Instant::now());
            events.clear();
            if let Err(e) = self.shared.poller.wait(&mut events, timeout) {
                if self.shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                eprintln!("inano-net: poll failed, retrying: {e}");
                thread::sleep(Duration::from_millis(10));
                continue;
            }
            self.shared.loop_wakeups.fetch_add(1, Ordering::Relaxed);
            self.shared.ready_events.record_us(events.len() as u64);
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if self.backoff.expired(Instant::now()) {
                // The backoff window is over; give accepting another go.
                if let Err(e) = self
                    .shared
                    .poller
                    .modify(&self.listener, Event::readable(LISTENER_KEY))
                {
                    eprintln!("inano-net: listener re-arm failed, retrying: {e}");
                    self.shared.accept_retries.fetch_add(1, Ordering::Relaxed);
                    self.backoff.engage(Instant::now());
                }
            }
            self.drain_completions();
            for ev in events.iter() {
                if ev.key == LISTENER_KEY {
                    self.on_listener();
                } else if ev.key == UDP_KEY {
                    self.on_udp();
                } else {
                    self.on_conn(ev);
                }
            }
        }
        // Shutdown sweep: close every live connection on the way out.
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.teardown(slot);
            }
        }
    }

    /// The listener fired: accept until it would block. Oneshot
    /// registration means it stays disarmed unless re-armed here (or
    /// by backoff expiry).
    fn on_listener(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.backoff.reset();
                    self.admit(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if let Err(e) = self
                        .shared
                        .poller
                        .modify(&self.listener, Event::readable(LISTENER_KEY))
                    {
                        eprintln!("inano-net: listener re-arm failed, retrying: {e}");
                        self.shared.accept_retries.fetch_add(1, Ordering::Relaxed);
                        self.backoff.engage(Instant::now());
                    }
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Persistent accept failures (fd exhaustion, say)
                    // must not busy-spin a core: count it, say why,
                    // and leave the listener disarmed until the
                    // backoff window ends.
                    self.shared.accept_retries.fetch_add(1, Ordering::Relaxed);
                    eprintln!("inano-net: accept failed, retrying: {e}");
                    self.backoff.engage(Instant::now());
                    return;
                }
            }
        }
    }

    /// The UDP socket fired: drain up to [`UDP_ROUNDS_PER_EVENT`]
    /// datagrams, then re-arm the oneshot registration (leftovers
    /// re-fire immediately — fairness against a datagram firehose).
    fn on_udp(&mut self) {
        let shared = Arc::clone(&self.shared);
        let Some(udp) = shared.udp.as_ref() else {
            return;
        };
        for _ in 0..UDP_ROUNDS_PER_EVENT {
            let (n, peer) = match udp.socket.recv_from(&mut self.scratch) {
                Ok(got) => got,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient kernel-reported errors (ICMP unreachable
                // from an earlier send, say) are not ours to fix.
                Err(_) => continue,
            };
            udp.datagrams_in.fetch_add(1, Ordering::Relaxed);
            self.ingest_datagram(udp, n, peer);
        }
        if shared
            .poller
            .modify(&udp.socket, Event::readable(UDP_KEY))
            .is_err()
        {
            eprintln!("inano-net: udp re-arm failed; datagram plane is dead");
        }
    }

    /// Admit, decode and dispatch one received datagram.
    fn ingest_datagram(&mut self, udp: &UdpPlane, n: usize, peer: SocketAddr) {
        let gate = self.udp_buckets.check(peer.ip(), Instant::now());
        let shared = Arc::clone(&self.shared);
        let buf = &self.scratch[..n];
        match gate {
            UdpGate::Admit => {}
            UdpGate::Shed => {
                udp.shed.fetch_add(1, Ordering::Relaxed);
                // A typed `Overloaded` answer — but only to a sender
                // whose header proves it speaks the protocol.
                if let Some(request_id) = datagram_id(buf) {
                    shared.dispatch.push(Job {
                        target: JobTarget::Datagram { peer },
                        work: Work::Reject {
                            request_id,
                            reason: "per-source datagram rate limit reached",
                        },
                    });
                }
                return;
            }
            UdpGate::Drop => {
                // Deep in a flood: answering every datagram would turn
                // the socket into a reflection amplifier. Silence.
                udp.shed.fetch_add(1, Ordering::Relaxed);
                shared.note_shed("per-source datagram rate limit (dropping)");
                return;
            }
        }
        let (request_id, frame) = match decode_datagram(buf, &shared.cfg.limits) {
            Ok(decoded) => decoded,
            Err(DatagramError::Drop(_)) => {
                udp.truncated.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(DatagramError::Fault { request_id, fault }) => {
                shared.dispatch.push(Job {
                    target: JobTarget::Datagram { peer },
                    work: Work::Fault { request_id, fault },
                });
                return;
            }
        };
        if !servable_on_datagram(&frame) {
            shared.dispatch.push(Job {
                target: JobTarget::Datagram { peer },
                work: Work::Fault {
                    request_id,
                    fault: WireFault::new(
                        ErrorCode::NotOnDatagram,
                        format!(
                            "frame type {:#04x} needs the stream transport",
                            frame.frame_type()
                        ),
                    ),
                },
            });
            return;
        }
        let Some(claim) = try_claim(
            &shared.request_bytes,
            shared.cfg.max_request_bytes,
            frame_cost(&frame),
        ) else {
            drop(frame);
            shared.dispatch.push(Job {
                target: JobTarget::Datagram { peer },
                work: Work::Reject {
                    request_id,
                    reason: "server-wide request-memory budget reached",
                },
            });
            return;
        };
        shared.request_bytes_peak.fetch_max(
            shared.request_bytes.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        shared.dispatch.push(Job {
            target: JobTarget::Datagram { peer },
            work: Work::Request {
                request_id,
                frame,
                claim,
                // No `TraceReply` trailers on the datagram plane: a
                // reply is one frame in one datagram, so the id's
                // trace bit is echoed but not honoured.
                trace: None,
            },
        });
    }

    /// Admission-check one accepted stream and register it, or refuse
    /// it with a typed error.
    fn admit(&mut self, stream: TcpStream) {
        let shared = Arc::clone(&self.shared);
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = refuse(stream, ErrorCode::ShuttingDown, "server is shutting down");
            return;
        }
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_conns {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            shared.faults.fetch_add(1, Ordering::Relaxed);
            shared.note_shed("connection limit reached");
            let _ = refuse(
                stream,
                ErrorCode::Overloaded,
                format!("connection limit {} reached", shared.cfg.max_conns),
            );
            return;
        }
        // The refusals above ride on the still-blocking stream; from
        // here the socket joins the nonblocking loop.
        if stream
            .set_nodelay(true)
            .and_then(|()| stream.set_nonblocking(true))
            .is_err()
        {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            shared.faults.fetch_add(1, Ordering::Relaxed);
            let _ = refuse(
                stream,
                ErrorCode::Overloaded,
                "cannot register connection (out of descriptors?)",
            );
            return;
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        if unsafe { shared.poller.add(&stream, Event::readable(slot)) }.is_err() {
            self.free.push(slot);
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            shared.faults.fetch_add(1, Ordering::Relaxed);
            let _ = refuse(
                stream,
                ErrorCode::Overloaded,
                "cannot register connection (out of descriptors?)",
            );
            return;
        }
        self.next_gen += 1;
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        self.conns[slot] = Some(Conn {
            stream,
            gen: self.next_gen,
            id,
            asm: FrameAssembler::new(),
            pending: VecDeque::new(),
            queued_requests: 0,
            in_service: false,
            in_service_request: false,
            wq: WriteQueue::default(),
            read_closed: false,
        });
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        shared.loop_fds.fetch_add(1, Ordering::Relaxed);
        shared
            .journal
            .emit(EventKind::ConnAccepted, format!("conn={id}"));
    }

    /// Readiness on one connection's socket.
    fn on_conn(&mut self, ev: Event) {
        let slot = ev.key;
        // A completion processed earlier this wake may have torn the
        // connection down; its already-harvested event is stale.
        if self.conns.get(slot).is_none_or(|c| c.is_none()) {
            return;
        }
        if ev.readable {
            self.read_ready(slot);
        }
        // Writability needs no flag check: `service` always tries to
        // flush whatever is queued.
        self.service(slot);
    }

    /// Pull bytes while the socket has them, the round cap allows,
    /// and backpressure permits. Leftover data re-fires on re-arm.
    fn read_ready(&mut self, slot: usize) {
        let cap = self.shared.cfg.max_inflight.max(1);
        for _ in 0..READ_ROUNDS_PER_EVENT {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            // Backpressure: a full pending queue stops the reads (and
            // `sync_interest` will drop read interest); TCP pushes
            // back on the client until a worker drains us.
            if conn.read_closed || conn.pending.len() >= cap {
                return;
            }
            let n = match (&conn.stream).read(&mut self.scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    return;
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.read_closed = true;
                    return;
                }
            };
            self.ingest(slot, n);
        }
    }

    /// Run `scratch[..n]` through the connection's assembler, queueing
    /// one `Work` item per completed event and converting overflow
    /// (the in-flight cap, the byte budget) into typed rejections.
    fn ingest(&mut self, slot: usize, n: usize) {
        let shared = Arc::clone(&self.shared);
        let cap = shared.cfg.max_inflight.max(1);
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let mut off = 0;
        while off < n {
            let (used, event) = conn.asm.feed(&self.scratch[off..n], &shared.cfg.limits);
            off += used;
            let Some(event) = event else {
                if used == 0 {
                    // Poisoned assembler: the rest of the input is
                    // past the fatal fault and must not be parsed.
                    return;
                }
                continue;
            };
            match event {
                Assembled::Frame {
                    request_id,
                    frame,
                    decode_us,
                } => {
                    // The trace clock starts the moment decode ends,
                    // so queue time (however long the worker backlog)
                    // is charged to the queue stage, not to decode.
                    let trace = (request_id & TRACE_FLAG != 0).then(|| TraceCtx::begin(decode_us));
                    let Some(claim) = try_claim(
                        &shared.request_bytes,
                        shared.cfg.max_request_bytes,
                        frame_cost(&frame),
                    ) else {
                        // The decoded frame is dropped right here —
                        // the whole point of the budget — and only its
                        // id travels on for the in-order rejection.
                        drop(frame);
                        conn.pending.push_back(Work::Reject {
                            request_id,
                            reason: "server-wide request-memory budget reached",
                        });
                        continue;
                    };
                    shared.request_bytes_peak.fetch_max(
                        shared.request_bytes.load(Ordering::Relaxed),
                        Ordering::Relaxed,
                    );
                    if conn.queued_requests >= cap {
                        // The cap is hit: refuse *this* request with a
                        // typed error instead of queueing it. Dropping
                        // the frame and claim frees its memory now.
                        drop(claim);
                        drop(frame);
                        conn.pending.push_back(Work::Reject {
                            request_id,
                            reason: "per-connection in-flight request limit reached",
                        });
                    } else {
                        conn.queued_requests += 1;
                        conn.pending.push_back(Work::Request {
                            request_id,
                            frame,
                            claim,
                            trace,
                        });
                    }
                }
                Assembled::Fault { request_id, fault } => {
                    conn.pending.push_back(Work::Fault { request_id, fault });
                }
                Assembled::Fatal { fault } => {
                    conn.pending.push_back(Work::Fatal { fault });
                    conn.read_closed = true;
                    return;
                }
            }
        }
    }

    /// Apply every completion the workers have queued since the last
    /// wake.
    fn drain_completions(&mut self) {
        let done: Vec<Completion> =
            std::mem::take(&mut *self.shared.completions.lock().expect("completions lock"));
        for c in done {
            self.apply_completion(c);
        }
    }

    fn apply_completion(&mut self, c: Completion) {
        let Some(conn) = self.conns.get_mut(c.key).and_then(|s| s.as_mut()) else {
            return;
        };
        if conn.gen != c.gen {
            return; // the slot was reused; this answer's conn is gone
        }
        conn.in_service = false;
        if conn.in_service_request {
            conn.queued_requests -= 1;
            conn.in_service_request = false;
        }
        if !c.bytes.is_empty() {
            conn.wq.bytes += c.bytes.len();
            self.shared
                .write_backlog
                .fetch_add(c.bytes.len() as u64, Ordering::Relaxed);
            conn.wq.bufs.push_back(c.bytes);
        }
        if c.close {
            // Fatal framing fault: this reply is the stream's last
            // word. Anything decoded after it is void.
            conn.read_closed = true;
            conn.pending.clear();
            conn.queued_requests = 0;
        }
        self.service(c.key);
    }

    /// Advance one connection: flush writes, dispatch its next work
    /// item if allowed, tear down if finished, and re-arm interest.
    fn service(&mut self, slot: usize) {
        let shared = Arc::clone(&self.shared);
        let backlog_cap = write_backlog_cap(&shared.cfg);
        let flush_failed = {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            flush_writes(conn, &shared).is_err()
        };
        if flush_failed {
            self.teardown(slot);
            return;
        }
        let done = {
            let conn = self.conns[slot].as_mut().expect("conn just flushed");
            // Dispatch gate: while this connection owes the client
            // more reply bytes than the backlog cap, its work waits —
            // generating yet more output for a non-reading peer helps
            // no one.
            if !conn.in_service && conn.wq.bytes < backlog_cap {
                if let Some(work) = conn.pending.pop_front() {
                    conn.in_service = true;
                    conn.in_service_request = matches!(work, Work::Request { .. });
                    shared.dispatch.push(Job {
                        target: JobTarget::Conn {
                            key: slot,
                            gen: conn.gen,
                        },
                        work,
                    });
                }
            }
            conn.read_closed
                && conn.pending.is_empty()
                && !conn.in_service
                && conn.wq.bufs.is_empty()
        };
        if done {
            self.teardown(slot);
            return;
        }
        self.sync_interest(slot);
    }

    /// Re-arm the oneshot registration to match what the connection
    /// can currently make progress on.
    fn sync_interest(&mut self, slot: usize) {
        let cap = self.shared.cfg.max_inflight.max(1);
        let Some(conn) = self.conns[slot].as_ref() else {
            return;
        };
        let ev = Event {
            key: slot,
            readable: !conn.read_closed && conn.pending.len() < cap,
            writable: !conn.wq.bufs.is_empty(),
        };
        if self.shared.poller.modify(&conn.stream, ev).is_err() {
            self.teardown(slot);
        }
    }

    /// Remove one connection: deregister, release accounting, emit
    /// the close event, free the slot. Dropping the `Conn` closes the
    /// socket and releases any budget claims still queued.
    fn teardown(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        let _ = self.shared.poller.delete(&conn.stream);
        self.shared
            .write_backlog
            .fetch_sub(conn.wq.bytes as u64, Ordering::Relaxed);
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
        self.shared.loop_fds.fetch_sub(1, Ordering::Relaxed);
        self.shared
            .journal
            .emit(EventKind::ConnClosed, format!("conn={}", conn.id));
        self.free.push(slot);
    }
}

/// Write queued reply bytes until the socket would block or the queue
/// empties. An error (including a zero-byte write) means the
/// connection is dead.
fn flush_writes(conn: &mut Conn, shared: &Shared) -> io::Result<()> {
    while !conn.wq.bufs.is_empty() {
        let res = {
            let front = conn.wq.bufs.front().expect("non-empty write queue");
            (&conn.stream).write(&front[conn.wq.off..])
        };
        match res {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                ))
            }
            Ok(n) => {
                conn.wq.off += n;
                conn.wq.bytes -= n;
                shared.write_backlog.fetch_sub(n as u64, Ordering::Relaxed);
                if conn.wq.off == conn.wq.bufs.front().map_or(0, Vec::len) {
                    conn.wq.bufs.pop_front();
                    conn.wq.off = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// One worker: pop jobs, answer them, and route each answer home — a
/// completion + loop kick for stream connections, a direct `send_to`
/// for datagrams. Exits when shutdown is flagged.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.dispatch.pop(&shared.shutdown) {
        let (bytes, close) = answer(shared, job.work);
        match job.target {
            JobTarget::Conn { key, gen } => {
                shared
                    .completions
                    .lock()
                    .expect("completions lock")
                    .push(Completion {
                        key,
                        gen,
                        bytes,
                        close,
                    });
                let _ = shared.poller.notify();
            }
            JobTarget::Datagram { peer } => udp_reply(shared, peer, bytes),
        }
    }
}

/// Send one encoded reply datagram, downgrading a reply that cannot
/// fit a datagram to a typed `FrameTooLarge` fault. Best-effort by
/// design: a send the kernel refuses (full buffer, unreachable peer)
/// is dropped and the client's retry covers it — that is the datagram
/// contract.
fn udp_reply(shared: &Shared, peer: SocketAddr, mut bytes: Vec<u8>) {
    let Some(udp) = shared.udp.as_ref() else {
        return;
    };
    let cap = datagram_cap(&shared.cfg.limits);
    if bytes.len() > cap {
        udp.oversize_reply.fetch_add(1, Ordering::Relaxed);
        shared.faults.fetch_add(1, Ordering::Relaxed);
        // The encoded reply's header still carries the request id.
        let request_id = u64::from_be_bytes(bytes[6..14].try_into().expect("encoded header"));
        bytes = Frame::Error {
            fault: WireFault::new(
                ErrorCode::FrameTooLarge,
                format!(
                    "reply of {} bytes exceeds the {cap}-byte datagram cap; \
                     use the stream transport or a smaller batch",
                    bytes.len()
                ),
            ),
        }
        .encode(request_id);
    }
    if udp.socket.send_to(&bytes, peer).is_ok() {
        udp.datagrams_out.fetch_add(1, Ordering::Relaxed);
    }
}

/// The request subset a single datagram exchange can carry: one small
/// self-contained question, one reply that plausibly fits a datagram.
/// Chunked fetches and the unbounded-page introspection frames need
/// the stream.
fn servable_on_datagram(frame: &Frame) -> bool {
    matches!(
        frame,
        Frame::Ping
            | Frame::QueryBatch { .. }
            | Frame::Resolve { .. }
            | Frame::Stats { .. }
            | Frame::Epoch { .. }
            | Frame::AtlasHead { .. }
    )
}

/// The request id of a datagram whose header passes the magic and
/// version checks — the minimum bar for answering a sender at all —
/// without decoding the payload. Used on the shed path, where doing
/// less work than a real request is the whole point.
fn datagram_id(buf: &[u8]) -> Option<u64> {
    if buf.len() < HEADER_BYTES {
        return None;
    }
    let magic = u32::from_be_bytes(buf[0..4].try_into().expect("sized slice"));
    if magic != MAGIC || !(MIN_VERSION..=VERSION).contains(&buf[4]) {
        return None;
    }
    Some(u64::from_be_bytes(
        buf[6..14].try_into().expect("sized slice"),
    ))
}

/// What the per-source token bucket says about one arriving datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum UdpGate {
    /// Within rate: serve it.
    Admit,
    /// Over rate: answer a typed `Overloaded` fault.
    Shed,
    /// Far over rate (a burst past any polite backoff): drop in
    /// silence, because typed answers at flood rate are amplification.
    Drop,
}

/// Per-source-address token buckets for the datagram plane. Classic
/// leaky refill: `rate` tokens/second up to `burst`; each datagram
/// costs one. The balance may run down to `-burst` — that negative
/// band is where typed `Overloaded` sheds live — and anything below
/// it is dropped unanswered. The table is bounded: past
/// [`UDP_BUCKETS_CAP`] sources, entries idle for over a second are
/// swept (an idle second refills ≥ any sane rate's burst, so sweeping
/// them loses nothing).
struct UdpBuckets {
    map: HashMap<IpAddr, UdpBucket>,
    rate: f64,
    burst: f64,
}

struct UdpBucket {
    tokens: f64,
    last: Instant,
}

impl UdpBuckets {
    fn new(rate: u32, burst: u32) -> UdpBuckets {
        UdpBuckets {
            map: HashMap::new(),
            rate: f64::from(rate),
            burst: f64::from(burst.max(1)),
        }
    }

    fn check(&mut self, ip: IpAddr, now: Instant) -> UdpGate {
        if self.rate <= 0.0 {
            return UdpGate::Admit;
        }
        if self.map.len() >= UDP_BUCKETS_CAP && !self.map.contains_key(&ip) {
            self.map
                .retain(|_, b| now.duration_since(b.last) < Duration::from_secs(1));
        }
        let bucket = self.map.entry(ip).or_insert(UdpBucket {
            tokens: self.burst,
            last: now,
        });
        let dt = now.duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * self.rate).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            UdpGate::Admit
        } else if bucket.tokens > -self.burst {
            bucket.tokens -= 1.0;
            UdpGate::Shed
        } else {
            UdpGate::Drop
        }
    }
}

/// Answer one work item: run the request (or materialise the typed
/// error), keep the counters and the slow log, and encode the reply —
/// plus the `TraceReply` trailer when one is owed — into the byte
/// buffer the loop will queue on the connection.
fn answer(shared: &Shared, work: Work) -> (Vec<u8>, bool) {
    // `overloaded` and `faults` are disjoint categories: a rejection
    // is healthy throttling, not a protocol or engine fault, and must
    // not make a throttled server look broken.
    let mut count_fault = true;
    // The request's budget claim lives until its reply is encoded
    // (that is when the request's memory is truly gone).
    let mut _claim = None;
    let mut trace = None;
    // Worker-side latency (engine + encode, not queue) feeds the
    // slow-query ring; `(frame type, batch size)` is kept out-of-band
    // so the description closure outlives the frame.
    let started = Instant::now();
    let mut slow_key: Option<(u8, usize)> = None;
    let (request_id, reply, close) = match work {
        Work::Request {
            request_id,
            frame,
            claim,
            trace: t,
        } => {
            trace = t;
            if let Some(t) = trace.as_mut() {
                t.dequeued();
            }
            let reply = respond(
                shared.registry.as_ref(),
                shared.obs.as_ref(),
                shared.journal.as_ref(),
                &frame,
                &shared.cfg.limits,
            );
            if let Some(t) = trace.as_mut() {
                t.served();
            }
            // A request the server had room to serve closes any open
            // overload episode.
            shared.note_served();
            let batch = match &frame {
                Frame::QueryBatch { pairs, .. } => pairs.len(),
                _ => 0,
            };
            slow_key = Some((frame.frame_type(), batch));
            drop(frame);
            _claim = Some(claim);
            (request_id, reply, false)
        }
        Work::Reject { request_id, reason } => {
            shared.overloaded.fetch_add(1, Ordering::Relaxed);
            shared.note_shed(reason);
            count_fault = false;
            let fault = WireFault::new(ErrorCode::Overloaded, reason);
            (request_id, Frame::Error { fault }, false)
        }
        Work::Fault { request_id, fault } => (request_id, Frame::Error { fault }, false),
        Work::Fatal { fault } => (0, Frame::Error { fault }, true),
    };
    let is_error = matches!(reply, Frame::Error { .. });
    if count_fault && is_error {
        shared.faults.fetch_add(1, Ordering::Relaxed);
    }
    let mut bytes = Vec::new();
    write_frame(&mut bytes, request_id, &reply).expect("encoding into a Vec cannot fail");
    if let Some(t) = trace.take() {
        // The trailer follows every *non-error* traced reply — the
        // same rule the client applies, so a pipelined stream never
        // misparses an error as a trailer. Encoding both into one
        // buffer keeps reply and trailer adjacent on the wire.
        if !is_error {
            let timings = t.finish();
            write_frame(&mut bytes, request_id, &Frame::TraceReply { timings })
                .expect("encoding into a Vec cannot fail");
        }
    }
    if let Some((frame_type, batch)) = slow_key {
        let us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        shared.slow.record_with(us, || {
            format!("frame {frame_type:#04x} id={request_id} pairs={batch}")
        });
    }
    (bytes, close)
}

/// Map one decoded request to its reply frame, routing shard-addressed
/// requests through the registry. `limits` bound the chunk size every
/// atlas body is served in: one chunk always fits one frame.
fn respond(
    registry: &ShardRegistry,
    obs: &MetricsRegistry,
    journal: &EventJournal,
    frame: &Frame,
    limits: &Limits,
) -> Frame {
    match frame {
        Frame::Ping => Frame::Pong,
        Frame::Metrics => Frame::MetricsReply { dump: obs.dump() },
        Frame::Events { since_seq } => Frame::EventsReply {
            page: journal.since(*since_seq),
        },
        Frame::QueryBatch { shard, pairs } => match registry.engine(*shard) {
            Ok(engine) => Frame::PathBatch {
                results: engine
                    .query_batch(pairs)
                    .iter()
                    .map(|r| match r {
                        Ok(p) => Ok(WirePath::from(p)),
                        Err(e) => Err(WireFault::from(e)),
                    })
                    .collect(),
            },
            Err(e) => fault_reply(&e),
        },
        Frame::Resolve { shard, ip } => match registry
            .engine(*shard)
            .and_then(|engine| engine.generation().predictor.resolve(*ip))
        {
            Ok(r) => Frame::ResolveReply {
                resolution: WireResolution::from(&r),
            },
            Err(e) => fault_reply(&e),
        },
        Frame::Stats { shard } => match registry.engine(*shard) {
            Ok(engine) => Frame::StatsReply {
                stats: WireStats::from(&engine.stats()),
            },
            Err(e) => fault_reply(&e),
        },
        Frame::Epoch { shard } => match registry.epoch(*shard) {
            Ok((epoch, day)) => Frame::EpochReply { epoch, day },
            Err(e) => fault_reply(&e),
        },
        Frame::ListShards => Frame::ShardsReply {
            shards: registry
                .iter()
                .map(|(id, engine)| {
                    let generation = engine.generation();
                    WireShardInfo {
                        shard: id.raw(),
                        epoch: generation.epoch,
                        day: generation.day(),
                    }
                })
                .collect(),
        },
        Frame::AtlasHead { shard } => match registry.engine(*shard) {
            Ok(engine) => Frame::AtlasHeadReply {
                version: engine.export().version(chunk_size_for(limits)),
            },
            Err(e) => fault_reply(&e),
        },
        Frame::FetchFullChunk {
            shard,
            epoch_tag,
            idx,
        } => match registry.engine(*shard) {
            Ok(engine) => {
                let snap = engine.export();
                if snap.epoch_tag != *epoch_tag {
                    // The shard swapped generations since the client's
                    // head: tell it to restart there rather than hand
                    // it a chunk of a different atlas.
                    return fault_reply(&ModelError::VersionRaced(format!(
                        "fetching tag {epoch_tag:#018x} but the head moved to {:#018x}",
                        snap.epoch_tag
                    )));
                }
                let cs = chunk_size_for(limits);
                match snap.chunk(cs, *idx) {
                    Ok(bytes) => Frame::ChunkReply {
                        idx: *idx,
                        // Snapshot CRCs are cached per chunk size: N
                        // mirrors fetching the ~7MB body hash it once.
                        crc: snap.chunk_crcs(cs)[*idx as usize],
                        bytes: bytes.to_vec(),
                    },
                    Err(e) => fault_reply(&e),
                }
            }
            Err(e) => fault_reply(&e),
        },
        Frame::FetchDelta { shard, have_day } => match registry.delta_blob(*shard, *have_day) {
            Ok(blob) => Frame::DeltaReply {
                handle: blob.map(|b| b.handle(chunk_size_for(limits))),
            },
            Err(e) => fault_reply(&e),
        },
        Frame::FetchDeltaChunk {
            shard,
            from_day,
            idx,
        } => match registry.delta_blob(*shard, *from_day) {
            // Delta bodies are kilobytes; recomputing the chunk crc
            // inline costs less than caching it would.
            Ok(Some(blob)) => match blob.chunk(chunk_size_for(limits), *idx) {
                Ok(bytes) => Frame::ChunkReply {
                    idx: *idx,
                    crc: inano_core::content_tag(bytes),
                    bytes: bytes.to_vec(),
                },
                Err(e) => fault_reply(&e),
            },
            // The delta a handle promised has rotated out of the log
            // (or never existed): the fetcher should re-head and, if it
            // fell that far behind, refetch the full atlas.
            Ok(None) => fault_reply(&ModelError::VersionRaced(format!(
                "no delta leaving day {from_day} is retained any more"
            ))),
            Err(e) => fault_reply(&e),
        },
        // Reply-direction (or error) frames are not requests.
        Frame::Pong
        | Frame::PathBatch { .. }
        | Frame::ResolveReply { .. }
        | Frame::StatsReply { .. }
        | Frame::EpochReply { .. }
        | Frame::ShardsReply { .. }
        | Frame::AtlasHeadReply { .. }
        | Frame::DeltaReply { .. }
        | Frame::ChunkReply { .. }
        | Frame::MetricsReply { .. }
        | Frame::EventsReply { .. }
        | Frame::TraceReply { .. }
        | Frame::Error { .. } => Frame::Error {
            fault: WireFault::new(
                ErrorCode::UnexpectedFrame,
                format!("frame type {:#04x} is not a request", frame.frame_type()),
            ),
        },
    }
}

fn fault_reply(e: &ModelError) -> Frame {
    Frame::Error {
        fault: WireFault::from(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_doubles_to_the_cap_and_resets() {
        let mut b = AcceptBackoff::new();
        let t0 = Instant::now();
        assert!(b.timeout(t0).is_none(), "fresh backoff imposes no timeout");
        b.engage(t0);
        assert_eq!(b.timeout(t0), Some(AcceptBackoff::START));
        // Each engagement doubles the *next* window, saturating at
        // the cap.
        let mut expect = AcceptBackoff::START * 2;
        for _ in 0..12 {
            b.engage(t0);
            assert_eq!(b.timeout(t0), Some(expect.min(AcceptBackoff::CAP)));
            expect = (expect * 2).min(AcceptBackoff::CAP);
        }
        assert_eq!(b.timeout(t0), Some(AcceptBackoff::CAP));
        b.reset();
        assert!(b.timeout(t0).is_none());
        b.engage(t0);
        assert_eq!(b.timeout(t0), Some(AcceptBackoff::START));
    }

    #[test]
    fn accept_backoff_expiry_clears_the_window_once() {
        let mut b = AcceptBackoff::new();
        let t0 = Instant::now();
        assert!(!b.expired(t0), "no window, nothing to expire");
        b.engage(t0);
        assert!(!b.expired(t0), "window still open at its start");
        let later = t0 + AcceptBackoff::START;
        assert!(b.expired(later), "window elapsed");
        assert!(!b.expired(later), "expiry is edge-triggered");
        // A timeout queried mid-window shrinks as time passes.
        b.engage(t0);
        let full = b.timeout(t0).expect("window open");
        let left = b.timeout(t0 + full / 2).expect("window still open");
        assert!(left < full);
    }

    #[test]
    fn write_backlog_cap_tracks_the_frame_limit_with_a_floor() {
        let mut cfg = ServerConfig::default();
        // Default 1MiB frames → 2MiB cap.
        assert_eq!(write_backlog_cap(&cfg), 2 << 20);
        // Tiny frame limits still get the 1MiB floor.
        cfg.limits.max_frame_bytes = 1024;
        assert_eq!(write_backlog_cap(&cfg), 1 << 20);
        // Big frame limits scale the cap up.
        cfg.limits.max_frame_bytes = 64 << 20;
        assert_eq!(write_backlog_cap(&cfg), 128 << 20);
    }

    #[test]
    fn udp_buckets_admit_then_shed_then_drop_then_refill() {
        let mut b = UdpBuckets::new(10, 4);
        let ip: IpAddr = "10.0.0.1".parse().unwrap();
        let t0 = Instant::now();
        for _ in 0..4 {
            assert_eq!(b.check(ip, t0), UdpGate::Admit);
        }
        // The burst is spent: a band of typed sheds, one burst deep...
        for _ in 0..4 {
            assert_eq!(b.check(ip, t0), UdpGate::Shed);
        }
        // ...and below it, silence.
        assert_eq!(b.check(ip, t0), UdpGate::Drop);
        // Buckets are per source: another address is untouched.
        let other: IpAddr = "10.0.0.2".parse().unwrap();
        assert_eq!(b.check(other, t0), UdpGate::Admit);
        // Refill brings the flooded source back.
        let t1 = t0 + Duration::from_secs(1);
        assert_eq!(b.check(ip, t1), UdpGate::Admit);
        // Rate 0 disables the bucket entirely.
        let mut open = UdpBuckets::new(0, 1);
        for _ in 0..100 {
            assert_eq!(open.check(ip, t0), UdpGate::Admit);
        }
    }

    #[test]
    fn datagram_id_requires_magic_and_version() {
        let bytes = Frame::Ping.encode(42);
        assert_eq!(datagram_id(&bytes), Some(42));
        assert_eq!(datagram_id(&bytes[..HEADER_BYTES - 1]), None);
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(datagram_id(&bad), None);
        let mut old = bytes;
        old[4] = MIN_VERSION - 1;
        assert_eq!(datagram_id(&old), None);
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        // Asking for 1 never lowers the limit; the returned value is
        // whatever is in force, which must cover at least stdio.
        let now = raise_nofile_limit(1);
        assert!(now >= 3);
        // Asking again for the same value is idempotent.
        assert_eq!(raise_nofile_limit(1), now);
    }
}
