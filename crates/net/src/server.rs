//! The threaded TCP server: accept loop + a reader/responder thread
//! pair per connection, all requests routed through a shared
//! [`ShardRegistry`] to the shard each frame names.
//!
//! ## Concurrency model
//!
//! `std::net` blocking I/O throughout — per connection, one *reader*
//! thread decodes frames and one *responder* thread answers them, with
//! a bounded in-flight queue between the two (the *query* parallelism
//! lives in each shard engine's worker pool, not here). Responder
//! threads call [`QueryEngine::query_batch`] on the frame's shard
//! directly, so remote batches share that shard's result cache, worker
//! pool and hot-swap semantics with embedded callers: a mid-load
//! `apply_delta` on one shard never stalls remote queries and never
//! touches any other shard's epoch or cache.
//!
//! ## Admission and limits
//!
//! * At most [`ServerConfig::max_conns`] concurrent connections; the
//!   gate answers excess connects with a typed `Overloaded` error
//!   frame and closes, so clients fail fast instead of queueing.
//! * At most [`ServerConfig::max_inflight`] decoded requests queued
//!   per connection. A pipeliner that outruns the responder gets a
//!   typed `Overloaded` error *per excess request* — replies still in
//!   request order, the connection still serving — instead of the
//!   server buffering an unbounded backlog. Memory per connection is
//!   thereby bounded by `max_inflight × max_frame_bytes` plus one
//!   frame in the reader.
//! * On top of the per-connection cap, one *server-wide* request-memory
//!   budget ([`ServerConfig::max_request_bytes`]) shared by every
//!   connection: each queued request reserves its estimated heap cost
//!   and releases it once answered, so many connections pipelining
//!   concurrently cannot multiply the per-connection bound into an OOM.
//!   A request that would breach the budget is answered with the same
//!   typed `Overloaded` error, in order, on a connection that keeps
//!   serving.
//! * Frames are bounded by [`Limits`]: an oversized declared payload
//!   or broken framing is answered once and the connection closed
//!   (the stream can no longer be trusted); a parse failure inside a
//!   well-framed payload is answered with a typed error and the
//!   connection keeps serving — a pipelined client loses one request,
//!   not the stream.
//!
//! ## Observability
//!
//! Every server carries an [`inano_obs::MetricsRegistry`]
//! ([`NetServer::metrics`]): the raw `srv.*` listener counters and a
//! per-shard collector over the registry (`shardN.*` engine, cache and
//! mirror series, including the `shardN.latency_us` histogram) are
//! folded into one dump answered over the wire (`Frame::Metrics`) and
//! rendered by the `--metrics-text` endpoint. A request id with the
//! [`TRACE_FLAG`] bit set gets a `TraceReply` trailer after its
//! (non-error) reply carrying the decode → queue → engine → encode
//! breakdown, and every request is offered to a slow-query ring
//! ([`NetServer::slow_log`]) keyed on its responder-side latency.
//! Alongside the counters runs the event journal
//! ([`NetServer::journal`], paged by `Frame::Events`): connection
//! accept/close, overload episode open/close (edge-triggered — a
//! burst of rejections is two events), and — via
//! [`QueryEngine::set_journal`] wiring at bind — every shard's
//! generation swaps, delta applications, full resyncs and recovered
//! races, all on one monotonically sequenced timeline.
//!
//! ## Shutdown
//!
//! [`NetServer::shutdown`] (also run on drop) stops the accept loop
//! with a self-connect, force-closes the registered connection
//! sockets so blocked reads return, and joins every thread. The
//! registry is shared and is *not* shut down — that's its owner's
//! call.

use crate::wire::{chunk_size_for, read_frame_timed, write_frame, Frame, Limits, ReadError};
use crate::wire::{WireFault, WirePath, WireResolution, WireShardInfo, WireStats, TRACE_FLAG};
use inano_model::{ErrorCode, ModelError};
use inano_obs::{EventJournal, EventKind, MetricValue, MetricsRegistry, SlowLog, TraceCtx};
use inano_service::{QueryEngine, ShardRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Weak};
use std::thread;
use std::time::Instant;

/// Entries the slow-query ring retains (oldest overwritten first).
const SLOW_LOG_CAPACITY: usize = 128;

/// Default responder-side latency past which a request is logged as
/// slow; retune live via [`NetServer::slow_log`].
const SLOW_LOG_THRESHOLD_US: u64 = 10_000;

/// Events the journal ring retains. Sized for minutes of fleet churn
/// between scrapes; a lapped scraper sees a `lost` count, never a gap
/// it can't detect.
const EVENT_JOURNAL_CAPACITY: usize = 1024;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Concurrent-connection admission gate.
    pub max_conns: usize,
    /// Most decoded requests queued per connection; a pipeliner
    /// exceeding it gets typed `Overloaded` errors for the excess.
    pub max_inflight: usize,
    /// Server-wide request-memory budget, bytes: the estimated heap
    /// cost of every queued-but-unanswered request across *all*
    /// connections. Breaching it answers the excess request with a
    /// typed `Overloaded` error. `usize::MAX` disables the budget.
    pub max_request_bytes: usize,
    /// Per-frame protocol limits.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_conns: 256,
            max_inflight: 128,
            max_request_bytes: 256 << 20,
            limits: Limits::default(),
        }
    }
}

/// Counters for observability and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerCounters {
    /// Connections currently being served.
    pub active: usize,
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections refused by the admission gate.
    pub rejected: u64,
    /// Frames answered with an error (fatal or per-frame); does NOT
    /// include in-flight rejections, which are healthy throttling and
    /// counted in `overloaded` alone.
    pub faults: u64,
    /// Pipelined requests refused by the per-connection in-flight cap.
    pub overloaded: u64,
}

struct Shared {
    registry: Arc<ShardRegistry>,
    obs: Arc<MetricsRegistry>,
    slow: Arc<SlowLog>,
    journal: Arc<EventJournal>,
    /// True while the server is inside an overload episode: set by the
    /// first shed (admission refusal, in-flight cap, memory budget),
    /// cleared by the first request served normally afterwards. The
    /// transitions — not every shed — land in the journal, so a burst
    /// of ten thousand rejections is two events, not ten thousand.
    overloaded_now: AtomicBool,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    /// Estimated bytes of queued-but-unanswered requests, across every
    /// connection (see [`ServerConfig::max_request_bytes`]).
    request_bytes: AtomicUsize,
    /// High-water mark of `request_bytes` over the server's lifetime
    /// (the `srv.request_bytes_peak` gauge).
    request_bytes_peak: AtomicUsize,
    accepted: AtomicU64,
    rejected: AtomicU64,
    faults: AtomicU64,
    overloaded: AtomicU64,
    /// Clones of live connection sockets, so shutdown can unblock
    /// their reader threads.
    streams: Mutex<HashMap<u64, TcpStream>>,
    handlers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Shared {
    /// Record one shed request/connection, opening an overload episode
    /// if none is running.
    fn note_shed(&self, why: &str) {
        if !self.overloaded_now.swap(true, Ordering::Relaxed) {
            self.journal.emit(EventKind::OverloadStart, why);
        }
    }

    /// Record a normally served request, closing any open episode.
    fn note_served(&self) {
        if self.overloaded_now.swap(false, Ordering::Relaxed) {
            self.journal.emit(EventKind::OverloadEnd, "");
        }
    }
}

/// A running server; dropping it shuts it down.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Mutex<Option<thread::JoinHandle<()>>>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving every shard in `registry` behind this one listener.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Arc<ShardRegistry>,
        cfg: ServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let obs = Arc::new(MetricsRegistry::new());
        let journal = Arc::new(EventJournal::new(EVENT_JOURNAL_CAPACITY));
        // Hand every shard engine the journal so swaps, deltas and
        // resyncs land on the same timeline as the listener's events.
        for (id, engine) in registry.iter() {
            engine.set_journal(Arc::clone(&journal), format!("shard{}", id.raw()));
        }
        let shared = Arc::new(Shared {
            registry,
            obs,
            slow: Arc::new(SlowLog::new(SLOW_LOG_CAPACITY, SLOW_LOG_THRESHOLD_US)),
            journal,
            overloaded_now: AtomicBool::new(false),
            cfg,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            request_bytes: AtomicUsize::new(0),
            request_bytes_peak: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            streams: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
        });
        attach_server_collector(&shared);
        attach_shard_collector(&shared.obs, &shared.registry);
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("inano-net-accept".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            shared,
            addr,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// Bind a single-shard server over one engine: the pre-sharding
    /// API, byte-for-byte the old semantics behind shard 0.
    pub fn bind_single(
        addr: impl ToSocketAddrs,
        engine: Arc<QueryEngine>,
        cfg: ServerConfig,
    ) -> io::Result<NetServer> {
        NetServer::bind(addr, Arc::new(ShardRegistry::single(engine)), cfg)
    }

    /// The bound address (the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard registry this server fronts (shared; `apply_delta`
    /// on a shard through this handle is visible to remote queries
    /// immediately, and only on that shard).
    pub fn registry(&self) -> &Arc<ShardRegistry> {
        &self.shared.registry
    }

    /// The server's unified metrics registry: `srv.*` listener series
    /// plus collector-fed `shardN.*` engine/cache/mirror series. The
    /// same dump answers `Frame::Metrics` on the wire and feeds the
    /// `--metrics-text` endpoint; callers may register their own
    /// series (the swarm layer does).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.obs
    }

    /// The slow-query ring: every request's responder-side latency is
    /// offered to it; entries over the threshold are retained top-K
    /// and drained by operators.
    pub fn slow_log(&self) -> &Arc<SlowLog> {
        &self.shared.slow
    }

    /// The server's event journal: the causal timeline behind the
    /// counters. Shard engines emit their swap/delta/resync events
    /// into it, the listener adds connection churn and overload
    /// episodes, and `Frame::Events` pages it over the wire. Callers
    /// (the mirror refresh loop, the swarm layer) may emit their own.
    pub fn journal(&self) -> &Arc<EventJournal> {
        &self.shared.journal
    }

    pub fn counters(&self) -> ServerCounters {
        ServerCounters {
            active: self.shared.active.load(Ordering::Relaxed),
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            faults: self.shared.faults.load(Ordering::Relaxed),
            overloaded: self.shared.overloaded.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, close every live connection, join all threads.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop; it checks the flag before serving.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.lock().take() {
            let _ = h.join();
        }
        for (_, s) in self.shared.streams.lock().drain() {
            let _ = s.shutdown(Shutdown::Both);
        }
        let handlers: Vec<_> = self.shared.handlers.lock().drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Fold the listener's raw counters into the metrics registry as
/// `srv.*` series at dump time. Holding only a [`Weak`] breaks the
/// `Shared` → registry → collector cycle, so dropping the server still
/// frees it.
fn attach_server_collector(shared: &Arc<Shared>) {
    let weak: Weak<Shared> = Arc::downgrade(shared);
    shared.obs.register_collector(move |out| {
        let Some(s) = weak.upgrade() else { return };
        let counter = |v: &AtomicU64| MetricValue::Counter(v.load(Ordering::Relaxed));
        out.push(("srv.accepted".into(), counter(&s.accepted)));
        out.push(("srv.rejected".into(), counter(&s.rejected)));
        out.push(("srv.faults".into(), counter(&s.faults)));
        out.push(("srv.overloaded".into(), counter(&s.overloaded)));
        let gauge = |v: usize| MetricValue::Gauge(v as u64);
        out.push(("srv.active".into(), gauge(s.active.load(Ordering::Relaxed))));
        out.push((
            "srv.request_bytes".into(),
            gauge(s.request_bytes.load(Ordering::Relaxed)),
        ));
        out.push((
            "srv.request_bytes_peak".into(),
            gauge(s.request_bytes_peak.load(Ordering::Relaxed)),
        ));
        // One past the newest journal seq: a scraper whose cursor
        // trails this by more than the ring capacity knows it lost
        // events even without issuing an `Events` request.
        out.push((
            "srv.events_head".into(),
            MetricValue::Gauge(s.journal.head_seq()),
        ));
    });
}

/// Snapshot every shard's engine, cache and mirror series as
/// `shardN.*` at dump time — no per-request bookkeeping beyond what
/// the engines already keep, so serving pays nothing for this.
fn attach_shard_collector(obs: &MetricsRegistry, registry: &Arc<ShardRegistry>) {
    let registry = Arc::clone(registry);
    obs.register_collector(move |out| {
        for (id, engine) in registry.iter() {
            let n = id.raw();
            let stats = engine.stats();
            let mirror = engine.mirror_stats();
            out.push((
                format!("shard{n}.queries"),
                MetricValue::Counter(stats.queries),
            ));
            out.push((
                format!("shard{n}.errors"),
                MetricValue::Counter(stats.errors),
            ));
            out.push((format!("shard{n}.swaps"), MetricValue::Counter(stats.swaps)));
            out.push((
                format!("shard{n}.cache.hits"),
                MetricValue::Counter(stats.cache_hits),
            ));
            out.push((
                format!("shard{n}.cache.misses"),
                MetricValue::Counter(stats.cache_misses),
            ));
            out.push((
                format!("shard{n}.cache.evictions"),
                MetricValue::Counter(stats.cache_evictions),
            ));
            out.push((format!("shard{n}.epoch"), MetricValue::Gauge(stats.epoch)));
            out.push((
                format!("shard{n}.day"),
                MetricValue::Gauge(stats.day as u64),
            ));
            out.push((
                format!("shard{n}.latency_us"),
                MetricValue::Histogram(stats.latency_buckets),
            ));
            out.push((
                format!("shard{n}.mirror.deltas_applied"),
                MetricValue::Counter(mirror.deltas_applied),
            ));
            out.push((
                format!("shard{n}.mirror.full_resyncs"),
                MetricValue::Counter(mirror.full_resyncs),
            ));
            out.push((
                format!("shard{n}.mirror.races_recovered"),
                MetricValue::Counter(mirror.races_recovered),
            ));
            out.push((
                format!("shard{n}.mirror.lag_days"),
                MetricValue::Gauge(mirror.lag_days as u64),
            ));
            out.push((
                format!("shard{n}.mirror.upstream_day"),
                MetricValue::Gauge(mirror.upstream_day as u64),
            ));
        }
    });
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut next_id = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept failures (fd exhaustion, say) must
                // not busy-spin a core; back off and say why.
                eprintln!("inano-net: accept failed, retrying: {e}");
                thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        // Reap finished handler threads so a long-lived server with
        // connection churn doesn't accumulate JoinHandles forever.
        shared.handlers.lock().retain(|h| !h.is_finished());
        if shared.shutdown.load(Ordering::SeqCst) {
            // Answer a genuine late client rather than hanging it; the
            // shutdown self-connect just gets dropped.
            let _ = refuse(stream, ErrorCode::ShuttingDown, "server is shutting down");
            return;
        }
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_conns {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            shared.faults.fetch_add(1, Ordering::Relaxed);
            shared.note_shed("connection limit reached");
            let _ = refuse(
                stream,
                ErrorCode::Overloaded,
                format!("connection limit {} reached", shared.cfg.max_conns),
            );
            continue;
        }
        // A connection we cannot register is one shutdown cannot
        // unblock later (its handler would block in read forever and
        // hang the join); refuse it rather than serve it.
        let clone = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                shared.faults.fetch_add(1, Ordering::Relaxed);
                let _ = refuse(
                    stream,
                    ErrorCode::Overloaded,
                    "cannot register connection (out of descriptors?)",
                );
                continue;
            }
        };
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        let conn_id = next_id;
        next_id += 1;
        shared
            .journal
            .emit(EventKind::ConnAccepted, format!("conn={conn_id}"));
        shared.streams.lock().insert(conn_id, clone);
        let worker = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("inano-net-conn-{conn_id}"))
                .spawn(move || {
                    let _ = serve_connection(stream, &shared);
                    shared.streams.lock().remove(&conn_id);
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                    shared
                        .journal
                        .emit(EventKind::ConnClosed, format!("conn={conn_id}"));
                })
                .expect("spawn connection handler")
        };
        shared.handlers.lock().push(worker);
    }
}

/// Send a single error frame on a connection we won't serve, then close.
fn refuse(stream: TcpStream, code: ErrorCode, message: impl Into<String>) -> io::Result<()> {
    let mut w = BufWriter::new(&stream);
    write_frame(
        &mut w,
        0,
        &Frame::Error {
            fault: WireFault::new(code, message),
        },
    )?;
    w.flush()?;
    stream.shutdown(Shutdown::Both)
}

/// A reservation against the server-wide request-memory pool, released
/// on drop — whichever path the queued request leaves by (answered,
/// queue torn down on disconnect, ...), the bytes come back.
struct Claim<'a> {
    bytes: usize,
    pool: &'a AtomicUsize,
}

impl Drop for Claim<'_> {
    fn drop(&mut self) {
        self.pool.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// Reserve `bytes` against the shared pool, or `None` on breach.
fn try_claim(pool: &AtomicUsize, budget: usize, bytes: usize) -> Option<Claim<'_>> {
    if budget == usize::MAX {
        return Some(Claim { bytes: 0, pool });
    }
    let prev = pool.fetch_add(bytes, Ordering::Relaxed);
    if prev.saturating_add(bytes) > budget {
        pool.fetch_sub(bytes, Ordering::Relaxed);
        return None;
    }
    Some(Claim { bytes, pool })
}

/// Estimated heap cost of holding one decoded request in the in-flight
/// queue. Every variable-size variant must be charged — the decoder
/// accepts reply-typed frames as inbound too (they queue until the
/// responder answers `UnexpectedFrame`), so a hostile client shipping
/// megabyte `ChunkReply`/`PathBatch` frames has to pay the budget for
/// them like any legitimate batch.
fn frame_cost(frame: &Frame) -> usize {
    const BASE: usize = 128;
    BASE + match frame {
        Frame::QueryBatch { pairs, .. } => pairs.len() * std::mem::size_of::<(u32, u32)>(),
        Frame::PathBatch { results } => results
            .iter()
            .map(|r| match r {
                Ok(p) => {
                    64 + 4
                        * (p.fwd_clusters.len()
                            + p.rev_clusters.len()
                            + p.fwd_as.len()
                            + p.rev_as.len())
                }
                Err(fault) => 64 + fault.message.len(),
            })
            .sum(),
        Frame::ChunkReply { bytes, .. } => bytes.len(),
        Frame::StatsReply { stats } => 64 + stats.latency_buckets.len() * 8,
        Frame::MetricsReply { dump } => dump
            .entries
            .iter()
            .map(|(name, value)| {
                48 + name.len()
                    + match value {
                        MetricValue::Histogram(buckets) => buckets.len() * 8,
                        MetricValue::Counter(_) | MetricValue::Gauge(_) => 8,
                    }
            })
            .sum(),
        Frame::ShardsReply { shards } => shards.len() * std::mem::size_of::<WireShardInfo>(),
        Frame::EventsReply { page } => page.events.iter().map(|e| 64 + e.detail.len()).sum(),
        Frame::Error { fault } => fault.message.len(),
        _ => 0,
    }
}

/// One unit handed from a connection's reader to its responder. The
/// responder answers strictly in queue order, which is read order — so
/// replies (rejections included) keep the pipelining contract.
enum Work<'a> {
    /// A decoded request to serve, holding its memory-budget claim
    /// until the reply is written.
    Request {
        request_id: u64,
        frame: Frame,
        claim: Claim<'a>,
        /// Live when the request id carried [`TRACE_FLAG`]: the stage
        /// clock that becomes the `TraceReply` trailer.
        trace: Option<TraceCtx>,
    },
    /// Read but refused: the in-flight cap or the server-wide memory
    /// budget was hit. Carrying only the id keeps a rejected backlog
    /// O(1) memory per request.
    Reject {
        request_id: u64,
        reason: &'static str,
    },
    /// The payload was framed soundly but does not parse.
    Fault { request_id: u64, fault: WireFault },
    /// The stream desynchronised: answer once (id 0) and close. Always
    /// the reader's last word.
    Fatal { fault: WireFault },
}

/// Serve one connection until EOF, a fatal framing error, or shutdown:
/// this thread reads and decodes frames, a paired responder thread
/// answers them through the bounded in-flight queue.
fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let responder_stream = stream.try_clone()?;
    let (tx, rx) = sync_channel::<Work>(shared.cfg.max_inflight.max(1));
    // The read loop owns `tx` and drops it when it returns (EOF, fatal
    // sent, io error, or responder gone), which lets the responder
    // drain the queue and exit; the scope then joins it.
    thread::scope(|scope| {
        scope.spawn(move || respond_loop(responder_stream, rx, shared));
        read_loop(&mut reader, tx, shared)
    })
}

/// The reader half: decode frames, queue work, convert overflow (the
/// per-connection cap or the server-wide byte budget) into typed
/// rejections.
fn read_loop<'a>(
    reader: &mut impl io::Read,
    tx: SyncSender<Work<'a>>,
    shared: &'a Shared,
) -> io::Result<()> {
    loop {
        match read_frame_timed(reader, &shared.cfg.limits) {
            Ok(Some((request_id, frame, decode_us))) => {
                // The trace clock starts the moment decode ends, so
                // queue time (however long the responder backlog) is
                // charged to the queue stage, not to decode.
                let trace = (request_id & TRACE_FLAG != 0).then(|| TraceCtx::begin(decode_us));
                let Some(claim) = try_claim(
                    &shared.request_bytes,
                    shared.cfg.max_request_bytes,
                    frame_cost(&frame),
                ) else {
                    // The decoded frame is dropped right here — the
                    // whole point of the budget — and only its id
                    // travels on for the in-order rejection.
                    drop(frame);
                    if tx
                        .send(Work::Reject {
                            request_id,
                            reason: "server-wide request-memory budget reached",
                        })
                        .is_err()
                    {
                        return Ok(()); // responder gone
                    }
                    continue;
                };
                shared.request_bytes_peak.fetch_max(
                    shared.request_bytes.load(Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                match tx.try_send(Work::Request {
                    request_id,
                    frame,
                    claim,
                    trace,
                }) {
                    Ok(()) => {}
                    Err(TrySendError::Full(work)) => {
                        // The cap is hit: refuse *this* request with a
                        // typed error instead of queueing it. The send
                        // blocks until the responder frees a slot, so
                        // even a rejected backlog is bounded. Dropping
                        // `work` releases its budget claim.
                        drop(work);
                        if tx
                            .send(Work::Reject {
                                request_id,
                                reason: "per-connection in-flight request limit reached",
                            })
                            .is_err()
                        {
                            return Ok(()); // responder gone
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => return Ok(()),
                }
            }
            Ok(None) => return Ok(()),
            Err(ReadError::Io(e)) => return Err(e),
            Err(ReadError::Fatal(fault)) => {
                let _ = tx.send(Work::Fatal { fault });
                return Ok(());
            }
            Err(ReadError::Frame { request_id, fault }) => {
                if tx.send(Work::Fault { request_id, fault }).is_err() {
                    return Ok(());
                }
            }
        }
    }
}

/// The responder half: pop work in order, write replies (and, for
/// traced requests answered without error, the `TraceReply` trailer).
/// On a write failure it closes the socket so the blocked reader
/// returns too.
fn respond_loop(stream: TcpStream, rx: Receiver<Work<'_>>, shared: &Shared) {
    let mut writer = BufWriter::new(&stream);
    for work in rx {
        // `overloaded` and `faults` are disjoint categories: a
        // rejection is healthy throttling, not a protocol or engine
        // fault, and must not make a throttled server look broken.
        let mut count_fault = true;
        // The request's budget claim lives until after its reply is
        // written (that is when the request's memory is truly gone).
        let mut _claim = None;
        let mut trace = None;
        // Responder-side latency (engine + encode, not queue) feeds the
        // slow-query ring; `(frame type, batch size)` is kept out-of
        // -band so the description closure outlives the frame.
        let started = Instant::now();
        let mut slow_key: Option<(u8, usize)> = None;
        let (request_id, reply, close) = match work {
            Work::Request {
                request_id,
                frame,
                claim,
                trace: t,
            } => {
                trace = t;
                if let Some(t) = trace.as_mut() {
                    t.dequeued();
                }
                let reply = respond(
                    shared.registry.as_ref(),
                    shared.obs.as_ref(),
                    shared.journal.as_ref(),
                    &frame,
                    &shared.cfg.limits,
                );
                if let Some(t) = trace.as_mut() {
                    t.served();
                }
                // A request the server had room to serve closes any
                // open overload episode.
                shared.note_served();
                let batch = match &frame {
                    Frame::QueryBatch { pairs, .. } => pairs.len(),
                    _ => 0,
                };
                slow_key = Some((frame.frame_type(), batch));
                drop(frame);
                _claim = Some(claim);
                (request_id, reply, false)
            }
            Work::Reject { request_id, reason } => {
                shared.overloaded.fetch_add(1, Ordering::Relaxed);
                shared.note_shed(reason);
                count_fault = false;
                let fault = WireFault::new(ErrorCode::Overloaded, reason);
                (request_id, Frame::Error { fault }, false)
            }
            Work::Fault { request_id, fault } => (request_id, Frame::Error { fault }, false),
            Work::Fatal { fault } => (0, Frame::Error { fault }, true),
        };
        let is_error = matches!(reply, Frame::Error { .. });
        if count_fault && is_error {
            shared.faults.fetch_add(1, Ordering::Relaxed);
        }
        let wrote = write_frame(&mut writer, request_id, &reply)
            .and_then(|()| writer.flush())
            .and_then(|()| match trace.take() {
                // The trailer follows every *non-error* traced reply —
                // the same rule the client applies, so a pipelined
                // stream never misparses an error as a trailer.
                Some(t) if !is_error => {
                    let timings = t.finish();
                    write_frame(&mut writer, request_id, &Frame::TraceReply { timings })
                        .and_then(|()| writer.flush())
                }
                _ => Ok(()),
            });
        if let Some((frame_type, batch)) = slow_key {
            let us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
            shared.slow.record_with(us, || {
                format!("frame {frame_type:#04x} id={request_id} pairs={batch}")
            });
        }
        if wrote.is_err() || close {
            // Unblock the reader (it may be mid-read or mid-send);
            // its next operation fails and the connection winds down.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    }
}

/// Map one decoded request to its reply frame, routing shard-addressed
/// requests through the registry. `limits` bound the chunk size every
/// atlas body is served in: one chunk always fits one frame.
fn respond(
    registry: &ShardRegistry,
    obs: &MetricsRegistry,
    journal: &EventJournal,
    frame: &Frame,
    limits: &Limits,
) -> Frame {
    match frame {
        Frame::Ping => Frame::Pong,
        Frame::Metrics => Frame::MetricsReply { dump: obs.dump() },
        Frame::Events { since_seq } => Frame::EventsReply {
            page: journal.since(*since_seq),
        },
        Frame::QueryBatch { shard, pairs } => match registry.engine(*shard) {
            Ok(engine) => Frame::PathBatch {
                results: engine
                    .query_batch(pairs)
                    .iter()
                    .map(|r| match r {
                        Ok(p) => Ok(WirePath::from(p)),
                        Err(e) => Err(WireFault::from(e)),
                    })
                    .collect(),
            },
            Err(e) => fault_reply(&e),
        },
        Frame::Resolve { shard, ip } => match registry
            .engine(*shard)
            .and_then(|engine| engine.generation().predictor.resolve(*ip))
        {
            Ok(r) => Frame::ResolveReply {
                resolution: WireResolution::from(&r),
            },
            Err(e) => fault_reply(&e),
        },
        Frame::Stats { shard } => match registry.engine(*shard) {
            Ok(engine) => Frame::StatsReply {
                stats: WireStats::from(&engine.stats()),
            },
            Err(e) => fault_reply(&e),
        },
        Frame::Epoch { shard } => match registry.epoch(*shard) {
            Ok((epoch, day)) => Frame::EpochReply { epoch, day },
            Err(e) => fault_reply(&e),
        },
        Frame::ListShards => Frame::ShardsReply {
            shards: registry
                .iter()
                .map(|(id, engine)| {
                    let generation = engine.generation();
                    WireShardInfo {
                        shard: id.raw(),
                        epoch: generation.epoch,
                        day: generation.day(),
                    }
                })
                .collect(),
        },
        Frame::AtlasHead { shard } => match registry.engine(*shard) {
            Ok(engine) => Frame::AtlasHeadReply {
                version: engine.export().version(chunk_size_for(limits)),
            },
            Err(e) => fault_reply(&e),
        },
        Frame::FetchFullChunk {
            shard,
            epoch_tag,
            idx,
        } => match registry.engine(*shard) {
            Ok(engine) => {
                let snap = engine.export();
                if snap.epoch_tag != *epoch_tag {
                    // The shard swapped generations since the client's
                    // head: tell it to restart there rather than hand
                    // it a chunk of a different atlas.
                    return fault_reply(&ModelError::VersionRaced(format!(
                        "fetching tag {epoch_tag:#018x} but the head moved to {:#018x}",
                        snap.epoch_tag
                    )));
                }
                let cs = chunk_size_for(limits);
                match snap.chunk(cs, *idx) {
                    Ok(bytes) => Frame::ChunkReply {
                        idx: *idx,
                        // Snapshot CRCs are cached per chunk size: N
                        // mirrors fetching the ~7MB body hash it once.
                        crc: snap.chunk_crcs(cs)[*idx as usize],
                        bytes: bytes.to_vec(),
                    },
                    Err(e) => fault_reply(&e),
                }
            }
            Err(e) => fault_reply(&e),
        },
        Frame::FetchDelta { shard, have_day } => match registry.delta_blob(*shard, *have_day) {
            Ok(blob) => Frame::DeltaReply {
                handle: blob.map(|b| b.handle(chunk_size_for(limits))),
            },
            Err(e) => fault_reply(&e),
        },
        Frame::FetchDeltaChunk {
            shard,
            from_day,
            idx,
        } => match registry.delta_blob(*shard, *from_day) {
            // Delta bodies are kilobytes; recomputing the chunk crc
            // inline costs less than caching it would.
            Ok(Some(blob)) => match blob.chunk(chunk_size_for(limits), *idx) {
                Ok(bytes) => Frame::ChunkReply {
                    idx: *idx,
                    crc: inano_core::content_tag(bytes),
                    bytes: bytes.to_vec(),
                },
                Err(e) => fault_reply(&e),
            },
            // The delta a handle promised has rotated out of the log
            // (or never existed): the fetcher should re-head and, if it
            // fell that far behind, refetch the full atlas.
            Ok(None) => fault_reply(&ModelError::VersionRaced(format!(
                "no delta leaving day {from_day} is retained any more"
            ))),
            Err(e) => fault_reply(&e),
        },
        // Reply-direction (or error) frames are not requests.
        Frame::Pong
        | Frame::PathBatch { .. }
        | Frame::ResolveReply { .. }
        | Frame::StatsReply { .. }
        | Frame::EpochReply { .. }
        | Frame::ShardsReply { .. }
        | Frame::AtlasHeadReply { .. }
        | Frame::DeltaReply { .. }
        | Frame::ChunkReply { .. }
        | Frame::MetricsReply { .. }
        | Frame::EventsReply { .. }
        | Frame::TraceReply { .. }
        | Frame::Error { .. } => Frame::Error {
            fault: WireFault::new(
                ErrorCode::UnexpectedFrame,
                format!("frame type {:#04x} is not a request", frame.frame_type()),
            ),
        },
    }
}

fn fault_reply(e: &ModelError) -> Frame {
    Frame::Error {
        fault: WireFault::from(e),
    }
}
