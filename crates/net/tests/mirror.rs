//! Integration tests for atlas dissemination: a chain of live servers
//! where each hop fetches the previous hop's atlas over the wire.
//!
//! Covers the acceptance surface of the v3 fetch frames: `NetClient`
//! as an `AtlasSource` bootstraps a second `QueryEngine` from a live
//! server, epoch tags match end to end, a delta published at the
//! origin propagates through the mirror with zero failed queries
//! mid-swap, an oversized atlas (bigger than one frame admits) arrives
//! correctly chunked, and a generation swap racing a chunk fetch comes
//! back as a typed `VersionRaced` fault that the reader recovers from.

use inano_core::AtlasReader;
use inano_model::{ErrorCode, Ipv4};
use inano_net::demo::{ring_atlas, ring_ip, ring_predictor_config, ring_shortcut_delta};
use inano_net::{Limits, MirrorSource, NetClient, NetError, NetServer, ServerConfig};
use inano_obs::EventKind;
use inano_service::{MirrorStats, QueryEngine, ServiceConfig, ShardId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const RING: u32 = 12;

fn ring_engine(ring: u32) -> Arc<QueryEngine> {
    Arc::new(QueryEngine::new(
        Arc::new(ring_atlas(ring, 0)),
        ring_service_config(),
    ))
}

fn ring_service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        chunk: 16,
        predictor: ring_predictor_config(),
        ..ServiceConfig::default()
    }
}

fn all_pairs() -> Vec<(Ipv4, Ipv4)> {
    (0..RING)
        .flat_map(|s| {
            (0..RING)
                .filter(move |&d| d != s)
                .map(move |d| (ring_ip(s), ring_ip(d)))
        })
        .collect()
}

/// The acceptance chain: origin → mirror engine (bootstrapped through
/// a `MirrorSource`) → client engine (bootstrapped through a bare
/// `NetClient` as its `AtlasSource`), with a delta published at the
/// origin propagating the whole way under live query load.
#[test]
fn mirror_chain_propagates_the_atlas_and_its_deltas() {
    // Hop 0: the origin owns the authoritative atlas.
    let origin_engine = ring_engine(RING);
    let origin = NetServer::bind_single(
        "127.0.0.1:0",
        Arc::clone(&origin_engine),
        ServerConfig::default(),
    )
    .expect("bind origin");
    let origin_tag = origin_engine.export().epoch_tag;

    // Hop 1: a mirror bootstraps its engine over the wire.
    let mut upstream = MirrorSource::connect(origin.local_addr(), ShardId::DEFAULT)
        .expect("connect mirror to origin");
    let mirror_engine = Arc::new(
        QueryEngine::bootstrap(&mut upstream, ring_service_config())
            .expect("mirror bootstraps from the origin"),
    );
    assert_eq!(
        mirror_engine.export().epoch_tag,
        origin_tag,
        "one wire hop must not change the atlas"
    );
    let mirror = NetServer::bind_single(
        "127.0.0.1:0",
        Arc::clone(&mirror_engine),
        ServerConfig::default(),
    )
    .expect("bind mirror");

    // Hop 2: a plain NetClient *is* an AtlasSource for shard 0.
    let mut downstream = NetClient::connect(mirror.local_addr()).expect("connect to mirror");
    let client_engine = QueryEngine::bootstrap(&mut downstream, ring_service_config())
        .expect("client engine bootstraps from the mirror");
    assert_eq!(
        client_engine.export().epoch_tag,
        origin_tag,
        "epoch tags match end to end"
    );
    assert_eq!(client_engine.day(), origin_engine.day());

    // The chain serves identical predictions.
    let pairs = all_pairs();
    for &(s, d) in &pairs {
        let a = origin_engine.query(s, d).expect("origin serves");
        let b = client_engine.query(s, d).expect("chain end serves");
        assert_eq!(a.fwd_clusters, b.fwd_clusters);
        assert!((a.rtt.ms() - b.rtt.ms()).abs() < 1e-12);
    }

    // Publish a delta at the origin while remote clients hammer the
    // mirror: the swap must lose nothing anywhere on the chain.
    let stop = Arc::new(AtomicBool::new(false));
    let mirror_addr = mirror.local_addr();
    let hammers: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let pairs = pairs.clone();
            thread::spawn(move || {
                let mut client = NetClient::connect(mirror_addr).expect("hammer connect");
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for r in client.query_batch(&pairs).expect("batch keeps working") {
                        r.expect("no query may fail while the delta propagates");
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(20));
    let day = origin_engine
        .apply_delta(&ring_shortcut_delta(RING, 0))
        .expect("origin applies the delta");
    assert_eq!(day, 1);
    // Each hop pulls from the one above it — exactly what the
    // `--mirror` refresh loop does on its interval.
    assert_eq!(
        mirror_engine.update(&mut upstream).expect("mirror update"),
        1,
        "the mirror pulls the origin's delta"
    );
    assert_eq!(
        client_engine
            .update(&mut downstream)
            .expect("client update"),
        1,
        "the client pulls the delta the mirror retained"
    );
    thread::sleep(Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);
    let served: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(served > 0, "the hammers really ran");

    // The whole chain landed on the same new generation...
    let new_tag = origin_engine.export().epoch_tag;
    assert_ne!(new_tag, origin_tag, "the delta changed the atlas");
    assert_eq!(mirror_engine.export().epoch_tag, new_tag);
    assert_eq!(client_engine.export().epoch_tag, new_tag);
    assert_eq!(client_engine.day(), 1);
    // ...and the chain end serves the day-1 shortcut.
    let far = RING / 2;
    let path = client_engine
        .query(ring_ip(0), ring_ip(far))
        .expect("routable");
    assert_eq!(
        path.fwd_clusters.len(),
        2,
        "day-1 shortcut at the chain end"
    );
    // Zero failed queries mid-swap, on the engines and over the wire.
    assert_eq!(mirror_engine.stats().errors, 0);
    assert_eq!(mirror.counters().faults, 0);
}

/// The mirror-side convergence instruments, end to end: the lag gauge
/// rises when the upstream moves, falls to zero after a refresh, and a
/// broken delta chain is bridged by a full resync that the counters
/// record.
#[test]
fn mirror_lag_gauge_falls_after_refresh_and_resyncs_count_broken_chains() {
    let origin_engine = ring_engine(RING);
    let origin = NetServer::bind_single(
        "127.0.0.1:0",
        Arc::clone(&origin_engine),
        ServerConfig::default(),
    )
    .expect("bind origin");
    let mut upstream = MirrorSource::connect(origin.local_addr(), ShardId::DEFAULT)
        .expect("connect mirror to origin");
    let mirror_engine = Arc::new(
        QueryEngine::bootstrap(&mut upstream, ring_service_config())
            .expect("mirror bootstraps from the origin"),
    );
    assert_eq!(
        mirror_engine.mirror_stats(),
        MirrorStats::default(),
        "a fresh mirror has followed nothing yet"
    );

    // A delta lands at the origin; one refresh converges the mirror
    // and says so in the gauges.
    origin_engine
        .apply_delta(&ring_shortcut_delta(RING, 0))
        .expect("origin applies the delta");
    assert_eq!(mirror_engine.update(&mut upstream).expect("refresh"), 1);
    let s = mirror_engine.mirror_stats();
    assert_eq!(s.deltas_applied, 1);
    assert_eq!(s.upstream_day, 1);
    assert_eq!(s.lag_days, 0, "converged right after the refresh");
    assert_eq!(s.full_resyncs, 0);

    // The origin restarts onto a fresh generation (empty delta log,
    // day jump): no delta bridges the gap, and the refresh must say
    // how far behind the mirror now is rather than claim convergence.
    origin_engine.replace_atlas(Arc::new(ring_atlas(RING, 5)));
    assert_eq!(
        mirror_engine.update(&mut upstream).expect("refresh"),
        0,
        "no delta leaves day 1 any more"
    );
    let s = mirror_engine.mirror_stats();
    assert_eq!(s.deltas_applied, 1, "nothing new applied");
    assert_eq!(s.upstream_day, 5);
    assert_eq!(s.lag_days, 4, "the broken chain leaves the mirror behind");

    // The bridge is a full resync — what `inano-serve`'s refresh loop
    // does — and the counters record it as such.
    let (_, bytes) = AtlasReader::default()
        .fetch_full(&mut upstream)
        .expect("full refetch over the wire");
    let atlas = inano_atlas::codec::decode(&bytes).expect("decode refetched atlas");
    mirror_engine.replace_atlas(Arc::new(atlas));
    let s = mirror_engine.mirror_stats();
    assert_eq!(s.full_resyncs, 1);
    assert_eq!(s.lag_days, 0, "the full swap pays the lag off");
    assert_eq!(mirror_engine.day(), 5);
    assert_eq!(mirror_engine.update(&mut upstream).expect("refresh"), 0);
    assert_eq!(mirror_engine.mirror_stats().lag_days, 0);

    // The same series is what the scrape plane publishes: a server
    // fronting the mirror engine answers them in its metrics dump.
    let mirror_srv = NetServer::bind_single(
        "127.0.0.1:0",
        Arc::clone(&mirror_engine),
        ServerConfig::default(),
    )
    .expect("bind mirror server");
    let mut probe = NetClient::connect(mirror_srv.local_addr()).expect("probe connect");
    let dump = probe.metrics().expect("metrics over the wire");
    assert_eq!(dump.counter("shard0.mirror.deltas_applied"), 1);
    assert_eq!(dump.counter("shard0.mirror.full_resyncs"), 1);
    assert_eq!(dump.gauge("shard0.mirror.lag_days"), 0);
    assert_eq!(dump.gauge("shard0.mirror.upstream_day"), 5);
    assert_eq!(dump.gauge("shard0.day"), 5);
}

/// The causal timeline of a mirror kill → restart, observed entirely
/// over the wire: a mirror's server dies, a delta lands at the origin
/// while it is dark, and the rebound server's journal shows exactly
/// the expected recovery sequence — one `generation_swap` then one
/// `delta_applied`, in seq order, with nothing lost.
#[test]
fn killed_and_restarted_mirror_journals_the_expected_recovery_sequence() {
    let origin_engine = ring_engine(RING);
    let origin = NetServer::bind_single(
        "127.0.0.1:0",
        Arc::clone(&origin_engine),
        ServerConfig::default(),
    )
    .expect("bind origin");
    let mut upstream = MirrorSource::connect(origin.local_addr(), ShardId::DEFAULT)
        .expect("connect mirror to origin");
    let mirror_engine = Arc::new(
        QueryEngine::bootstrap(&mut upstream, ring_service_config())
            .expect("mirror bootstraps from the origin"),
    );
    let mirror = NetServer::bind_single(
        "127.0.0.1:0",
        Arc::clone(&mirror_engine),
        ServerConfig::default(),
    )
    .expect("bind mirror");

    // Before the fault, the mirror's timeline holds only connection
    // lifecycle — no swaps have happened on this node.
    let mut probe = NetClient::connect(mirror.local_addr()).expect("probe connect");
    let quiet = probe.events(0).expect("events");
    assert_eq!(quiet.lost, 0);
    assert!(quiet
        .events
        .iter()
        .all(|e| matches!(e.kind, EventKind::ConnAccepted | EventKind::ConnClosed)));

    // Kill the mirror's server; the delta lands while it is dark.
    drop(probe);
    mirror.shutdown();
    drop(mirror);
    origin_engine
        .apply_delta(&ring_shortcut_delta(RING, 0))
        .expect("origin applies the delta mid-outage");

    // Restart: a fresh socket and a fresh journal over the same engine
    // (a real process restart reloads its cached atlas the same way).
    // The first refresh tick bridges the missed delta.
    let mirror = NetServer::bind_single(
        "127.0.0.1:0",
        Arc::clone(&mirror_engine),
        ServerConfig::default(),
    )
    .expect("rebind mirror");
    assert_eq!(
        mirror_engine.update(&mut upstream).expect("refresh"),
        1,
        "the restarted mirror pulls the delta it missed"
    );

    // Over the wire, the recovery is exactly one swap of one delta.
    let mut probe = NetClient::connect(mirror.local_addr()).expect("probe reconnect");
    let page = probe.events(0).expect("events after restart");
    assert_eq!(page.lost, 0, "the fresh ring dropped nothing");
    let recovery: Vec<_> = page
        .events
        .iter()
        .filter(|e| !matches!(e.kind, EventKind::ConnAccepted | EventKind::ConnClosed))
        .collect();
    assert_eq!(recovery.len(), 2, "exactly the recovery pair: {recovery:?}");
    assert_eq!(recovery[0].kind, EventKind::GenerationSwap);
    assert_eq!(recovery[0].detail, "shard0 epoch=1 day=1");
    assert_eq!(recovery[1].kind, EventKind::DeltaApplied);
    assert_eq!(recovery[1].detail, "shard0 from=0 to=1");
    assert!(recovery[0].seq < recovery[1].seq, "causal order holds");

    // The cursor starts empty after the page: nothing is replayed.
    let tail = probe.events(page.next_seq).expect("cursor page");
    assert_eq!(tail.lost, 0);
    assert!(tail.events.is_empty());
    assert_eq!(mirror_engine.day(), 1);
}

/// An atlas bigger than `max_frame_bytes` must arrive as more chunks,
/// never as a bigger frame.
#[test]
fn oversized_atlas_fetch_is_chunked_to_the_frame_limit() {
    let limits = Limits {
        max_frame_bytes: 1024,
        ..Limits::default()
    };
    let engine = ring_engine(64);
    assert!(
        engine.export().bytes.len() > limits.max_frame_bytes as usize,
        "the test atlas must exceed one frame"
    );
    let server = NetServer::bind_single(
        "127.0.0.1:0",
        Arc::clone(&engine),
        ServerConfig {
            limits,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let head = client.atlas_head().expect("head");
    assert!(
        head.chunk_size + inano_net::wire::CHUNK_WIRE_OVERHEAD <= limits.max_frame_bytes,
        "a chunk (plus framing) must fit one frame"
    );
    assert!(
        head.n_chunks() >= 2,
        "an atlas of {} bytes over {}-byte chunks must take several",
        head.full_len,
        head.chunk_size
    );

    // The standard reader path assembles it and lands on the same tag.
    let second = QueryEngine::bootstrap(&mut client, ring_service_config())
        .expect("bootstrap through many small chunks");
    assert_eq!(second.export().epoch_tag, engine.export().epoch_tag);
    second
        .query(ring_ip(0), ring_ip(5))
        .expect("the chunked copy serves queries");
}

/// A generation swap landing between a client's head and its chunk
/// fetches must surface as a typed `VersionRaced` fault — and the
/// reader must recover by restarting at the new head.
#[test]
fn generation_swap_mid_fetch_is_a_typed_race_the_reader_survives() {
    let engine = ring_engine(RING);
    let server =
        NetServer::bind_single("127.0.0.1:0", Arc::clone(&engine), ServerConfig::default())
            .expect("bind");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    let stale = client.atlas_head().expect("head");
    engine
        .apply_delta(&ring_shortcut_delta(RING, 0))
        .expect("swap under the fetch");
    match client.fetch_full_chunk_on(ShardId::DEFAULT, stale.epoch_tag, 0) {
        Err(NetError::Remote(fault)) => assert_eq!(fault.code, ErrorCode::VersionRaced),
        other => panic!("want typed VersionRaced, got {other:?}"),
    }
    // Stale chunk indexes are typed too, and neither fault cost us the
    // connection.
    let fresh = client.atlas_head().expect("fresh head");
    match client.fetch_full_chunk_on(ShardId::DEFAULT, fresh.epoch_tag, fresh.n_chunks() + 7) {
        Err(NetError::Remote(fault)) => assert_eq!(fault.code, ErrorCode::ChunkOutOfRange),
        other => panic!("want typed ChunkOutOfRange, got {other:?}"),
    }

    // The reader's restart logic turns the race into a clean fetch of
    // the *new* generation.
    let (version, bytes) = AtlasReader::default()
        .fetch_full(&mut client)
        .expect("reader recovers from the race");
    assert_eq!(version.day, 1);
    assert_eq!(version.epoch_tag, engine.export().epoch_tag);
    assert_eq!(bytes.len() as u64, version.full_len);
}

/// Fetching a delta nobody retains is `None`; fetching its chunks is a
/// typed race (re-head, refetch full), never a connection loss.
#[test]
fn missing_deltas_are_none_and_their_chunks_are_typed_races() {
    let engine = ring_engine(RING);
    let server =
        NetServer::bind_single("127.0.0.1:0", Arc::clone(&engine), ServerConfig::default())
            .expect("bind");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    assert!(client
        .fetch_delta_on(ShardId::DEFAULT, 0)
        .expect("no delta yet")
        .is_none());
    match client.fetch_delta_chunk_on(ShardId::DEFAULT, 0, 0) {
        Err(NetError::Remote(fault)) => assert_eq!(fault.code, ErrorCode::VersionRaced),
        other => panic!("want typed VersionRaced, got {other:?}"),
    }

    // After a swap the origin retains the delta it applied, and serves
    // it back out chunked.
    engine
        .apply_delta(&ring_shortcut_delta(RING, 0))
        .expect("swap");
    let handle = client
        .fetch_delta_on(ShardId::DEFAULT, 0)
        .expect("delta query")
        .expect("the applied delta is retained");
    assert_eq!((handle.from_day, handle.to_day), (0, 1));
    let (got, bytes) = AtlasReader::default()
        .fetch_delta(&mut client, 0)
        .expect("delta fetch")
        .expect("retained");
    assert_eq!(got, handle);
    assert_eq!(bytes.len() as u64, handle.len);
    // Unknown shards fault typed on the fetch frames like everywhere.
    match client.atlas_head_on(ShardId(9)) {
        Err(NetError::Remote(fault)) => assert_eq!(fault.code, ErrorCode::UnknownShard),
        other => panic!("want typed UnknownShard, got {other:?}"),
    }
    client.ping().expect("connection survives all of it");
}
