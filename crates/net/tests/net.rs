//! Integration tests for the network front end: a live server over a
//! ring-world engine, driven by real sockets.
//!
//! Covers the acceptance surface of the net subsystem: remote answers
//! equal embedded answers, pipelining preserves order and ids,
//! malformed/oversized frames come back as typed errors (never a
//! panic, never a hang), the admission gate refuses with `Overloaded`,
//! and a mid-load `apply_delta` is visible to remote clients as a new
//! epoch without a single failed query.

use inano_model::{ErrorCode, Ipv4};
use inano_net::demo::{ring_atlas, ring_ip, ring_predictor_config, ring_shortcut_delta};
use inano_net::wire::{read_frame, Frame, Limits, HEADER_BYTES, MAGIC, VERSION};
use inano_net::{NetClient, NetError, NetServer, ServerConfig};
use inano_obs::EventKind;
use inano_service::{QueryEngine, ServiceConfig, ShardId, ShardRegistry};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const RING: u32 = 12;

fn ring_engine(ring: u32) -> Arc<QueryEngine> {
    Arc::new(QueryEngine::new(
        Arc::new(ring_atlas(ring, 0)),
        ServiceConfig {
            workers: 4,
            chunk: 16,
            predictor: ring_predictor_config(),
            ..ServiceConfig::default()
        },
    ))
}

fn ring_server(cfg: ServerConfig) -> NetServer {
    NetServer::bind_single("127.0.0.1:0", ring_engine(RING), cfg).expect("bind ephemeral port")
}

/// The shard-0 engine, the way pre-sharding tests reached it.
fn engine0(server: &NetServer) -> &Arc<QueryEngine> {
    server
        .registry()
        .engine(ShardId::DEFAULT)
        .expect("shard 0 exists")
}

fn all_pairs() -> Vec<(Ipv4, Ipv4)> {
    (0..RING)
        .flat_map(|s| {
            (0..RING)
                .filter(move |&d| d != s)
                .map(move |d| (ring_ip(s), ring_ip(d)))
        })
        .collect()
}

#[test]
fn remote_answers_equal_embedded_answers() {
    let server = ring_server(ServerConfig::default());
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");

    let pairs = all_pairs();
    let remote = client.query_batch(&pairs).expect("batch");
    for (i, r) in remote.into_iter().enumerate() {
        let wire = r.unwrap_or_else(|f| panic!("pair {i} faulted: {f}"));
        let local = engine0(&server)
            .query(pairs[i].0, pairs[i].1)
            .expect("embedded query");
        let got = wire.into_predicted();
        assert_eq!(got.fwd_clusters, local.fwd_clusters);
        assert_eq!(got.rev_clusters, local.rev_clusters);
        assert_eq!(got.fwd_as_path, local.fwd_as_path);
        assert_eq!(got.rev_as_path, local.rev_as_path);
        assert!((got.rtt.ms() - local.rtt.ms()).abs() < 1e-12);
        assert!((got.loss.rate() - local.loss.rate()).abs() < 1e-12);
    }

    // Resolve agrees with the engine's resolution.
    let r = client.resolve(ring_ip(3)).expect("resolve");
    let local = engine0(&server)
        .generation()
        .predictor
        .resolve(ring_ip(3))
        .unwrap();
    assert_eq!(r.into_resolution(), local);

    // Stats flow over the wire and reflect the served load — raw
    // latency buckets included, holding exactly the served queries.
    let stats = client.stats().expect("stats");
    assert!(stats.queries >= pairs.len() as u64);
    assert_eq!(stats.epoch, 0);
    assert_eq!(stats.day, 0);
    assert_eq!(stats.latency_buckets.iter().sum::<u64>(), stats.queries);
    assert_eq!(client.epoch().expect("epoch"), (0, 0));

    // A single-shard server lists exactly shard 0.
    let listed = client.shards().expect("shards");
    assert_eq!(listed.len(), 1);
    assert_eq!((listed[0].shard, listed[0].epoch, listed[0].day), (0, 0, 0));
}

#[test]
fn per_pair_failures_are_typed_not_batch_fatal() {
    let server = ring_server(ServerConfig::default());
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    // An address outside every ring prefix fails its pair only.
    let unroutable = Ipv4(0xf000_0001);
    let results = client
        .query_batch(&[
            (ring_ip(0), ring_ip(1)),
            (ring_ip(0), unroutable),
            (ring_ip(1), ring_ip(2)),
        ])
        .expect("batch itself succeeds");
    assert!(results[0].is_ok());
    assert_eq!(
        results[1].as_ref().unwrap_err().code,
        ErrorCode::UnroutableAddress
    );
    assert!(results[2].is_ok());
}

#[test]
fn pipelined_requests_come_back_in_order_with_matching_ids() {
    let server = ring_server(ServerConfig::default());
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let pairs = all_pairs();
    let chunks: Vec<&[(Ipv4, Ipv4)]> = pairs.chunks(7).collect();
    let ids: Vec<u64> = chunks
        .iter()
        .map(|c| client.submit_batch(c).expect("submit"))
        .collect();
    for (k, &id) in ids.iter().enumerate() {
        let (got_id, frame) = client.recv().expect("reply");
        assert_eq!(got_id, id, "replies arrive in request order");
        match frame {
            Frame::PathBatch { results } => {
                assert_eq!(results.len(), chunks[k].len());
                assert!(results.iter().all(|r| r.is_ok()));
            }
            other => panic!("want PathBatch, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_gets_a_typed_error_then_close() {
    let server = ring_server(ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write");
    let reply = read_frame(&mut raw, &Limits::default())
        .expect("server answers before closing")
        .expect("one frame");
    match reply.1 {
        Frame::Error { fault } => assert_eq!(fault.code, ErrorCode::BadMagic),
        other => panic!("want error frame, got {other:?}"),
    }
    // ... and then the connection is closed on the server's side.
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty());
}

#[test]
fn bad_version_gets_a_typed_error_then_close() {
    let server = ring_server(ServerConfig::default());
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    let mut bytes = Frame::Ping.encode(1);
    bytes[4] = VERSION + 9;
    raw.write_all(&bytes).expect("write");
    let (_, reply) = read_frame(&mut raw, &Limits::default())
        .expect("answered")
        .expect("one frame");
    match reply {
        Frame::Error { fault } => assert_eq!(fault.code, ErrorCode::BadVersion),
        other => panic!("want error frame, got {other:?}"),
    }
}

/// Protocol additivity, over a live socket: frames exactly as a v3 or
/// v4 client would send them (same bytes, older version stamp) must be
/// served by a v5 server with no behavioral difference.
#[test]
fn v3_and_v4_clients_interop_unchanged_against_a_v5_server() {
    let server = ring_server(ServerConfig::default());
    for old in [3u8, 4] {
        let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
        let mut bytes = Frame::Ping.encode(7);
        bytes[4] = old;
        raw.write_all(&bytes).expect("write ping");
        let (id, reply) = read_frame(&mut raw, &Limits::default())
            .expect("answered")
            .expect("one frame");
        assert_eq!(id, 7);
        assert!(matches!(reply, Frame::Pong), "v{old} ping answered");

        let mut bytes = Frame::QueryBatch {
            shard: ShardId::DEFAULT,
            pairs: vec![(ring_ip(0), ring_ip(3))],
        }
        .encode(8);
        bytes[4] = old;
        raw.write_all(&bytes).expect("write batch");
        let (id, reply) = read_frame(&mut raw, &Limits::default())
            .expect("answered")
            .expect("one frame");
        assert_eq!(id, 8);
        match reply {
            Frame::PathBatch { results } => {
                assert_eq!(results.len(), 1);
                assert!(results[0].is_ok(), "v{old} query served");
            }
            other => panic!("want PathBatch, got {other:?}"),
        }
    }
}

/// The event journal over the wire: the server's own admission shows
/// up on the timeline, seqs never reorder, and the `since_seq` cursor
/// pages losslessly — a second request picks up exactly what happened
/// after the first.
#[test]
fn events_flow_over_the_wire_with_lossless_cursor_paging() {
    let server = ring_server(ServerConfig::default());
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");

    let page = client.events(0).expect("events");
    assert_eq!(page.lost, 0);
    assert!(
        page.events
            .iter()
            .any(|e| e.kind == EventKind::ConnAccepted),
        "our own admission is on the timeline"
    );
    assert!(
        page.events.windows(2).all(|w| w[0].seq < w[1].seq),
        "a page is strictly seq-ordered"
    );

    // A swap lands between pages; the cursor returns exactly the new
    // events, nothing replayed, nothing dropped.
    engine0(&server)
        .apply_delta(&ring_shortcut_delta(RING, 0))
        .expect("swap");
    let next = client.events(page.next_seq).expect("second page");
    assert_eq!(next.lost, 0);
    assert!(next.events.iter().all(|e| e.seq >= page.next_seq));
    let kinds: Vec<EventKind> = next.events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&EventKind::GenerationSwap));
    assert!(kinds.contains(&EventKind::DeltaApplied));

    // The scrape plane can see the journal's head without an Events
    // request: the `srv.events_head` gauge.
    let dump = client.metrics().expect("metrics");
    assert!(dump.gauge("srv.events_head") >= next.next_seq);
}

#[test]
fn oversized_declared_frame_is_refused_without_reading_it() {
    let limits = Limits {
        max_frame_bytes: 1024,
        max_batch: 64,
    };
    let server = ring_server(ServerConfig {
        max_conns: 4,
        limits,
        ..ServerConfig::default()
    });
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    // A header declaring a 16MB payload we never send: the server must
    // answer from the header alone instead of trying to buffer it.
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC.to_be_bytes());
    header.push(VERSION);
    header.push(0x02); // QueryBatch
    header.extend_from_slice(&77u64.to_be_bytes());
    header.extend_from_slice(&(16u32 << 20).to_be_bytes());
    assert_eq!(header.len(), HEADER_BYTES);
    raw.write_all(&header).expect("write");
    let (_, reply) = read_frame(&mut raw, &Limits::default())
        .expect("answered")
        .expect("one frame");
    match reply {
        Frame::Error { fault } => assert_eq!(fault.code, ErrorCode::FrameTooLarge),
        other => panic!("want error frame, got {other:?}"),
    }
}

#[test]
fn over_limit_batch_faults_but_the_connection_survives() {
    let limits = Limits {
        max_frame_bytes: 1 << 20,
        max_batch: 8,
    };
    let server = ring_server(ServerConfig {
        max_conns: 4,
        limits,
        ..ServerConfig::default()
    });
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let too_many = vec![(ring_ip(0), ring_ip(1)); 9];
    match client.query_batch(&too_many) {
        Err(NetError::Remote(fault)) => assert_eq!(fault.code, ErrorCode::BatchTooLarge),
        other => panic!("want typed remote fault, got {other:?}"),
    }
    // Same connection, pipelining intact: the next request works.
    client.ping().expect("connection survives a batch fault");
    let ok = client
        .query_batch(&[(ring_ip(0), ring_ip(1))])
        .expect("small batch");
    assert!(ok[0].is_ok());
    assert!(server.counters().faults >= 1);
}

#[test]
fn reply_direction_frames_are_rejected_as_requests() {
    let server = ring_server(ServerConfig::default());
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    match client.call(&Frame::Pong) {
        Err(NetError::Remote(fault)) => assert_eq!(fault.code, ErrorCode::UnexpectedFrame),
        other => panic!("want typed remote fault, got {other:?}"),
    }
    client.ping().expect("connection survives");
}

#[test]
fn admission_gate_refuses_with_overloaded() {
    let server = ring_server(ServerConfig {
        max_conns: 2,
        limits: Limits::default(),
        ..ServerConfig::default()
    });
    let mut a = NetClient::connect(server.local_addr()).expect("first");
    let mut b = NetClient::connect(server.local_addr()).expect("second");
    a.ping().expect("first served");
    b.ping().expect("second served");

    // The third connection must be answered with Overloaded and closed.
    let mut raw = TcpStream::connect(server.local_addr()).expect("third connects at TCP level");
    let (_, reply) = read_frame(&mut raw, &Limits::default())
        .expect("gate answers")
        .expect("one frame");
    match reply {
        Frame::Error { fault } => assert_eq!(fault.code, ErrorCode::Overloaded),
        other => panic!("want error frame, got {other:?}"),
    }
    assert_eq!(server.counters().rejected, 1);

    // The same refusal is observable through NetClient as a typed
    // frame (request id 0), so callers can implement backoff on the
    // code. recv() rather than ping(): the gate closes right after
    // writing, and a request racing the close could die to an RST
    // before the refusal is read.
    let mut refused = NetClient::connect(server.local_addr()).expect("TCP connect succeeds");
    match refused.recv() {
        Ok((0, Frame::Error { fault })) => assert_eq!(fault.code, ErrorCode::Overloaded),
        other => panic!("want typed Overloaded through NetClient, got {other:?}"),
    }

    // Dropping one admitted client frees a slot.
    drop(a);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut admitted = None;
    while std::time::Instant::now() < deadline {
        let mut c = match NetClient::connect(server.local_addr()) {
            Ok(c) => c,
            Err(_) => continue,
        };
        if c.ping().is_ok() {
            admitted = Some(c);
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }
    admitted.expect("slot frees after a client disconnects");
    b.ping().expect("existing client unaffected");
}

#[test]
fn swap_under_remote_load_is_lossless_and_bumps_the_epoch() {
    let server = Arc::new(ring_server(ServerConfig::default()));
    let far = RING / 2;

    {
        let mut probe = NetClient::connect(server.local_addr()).expect("connect");
        assert_eq!(probe.epoch().expect("epoch"), (0, 0));
        let before = probe
            .query_batch(&[(ring_ip(0), ring_ip(far))])
            .expect("pre-swap query")[0]
            .clone()
            .expect("routable");
        assert_eq!(
            before.fwd_clusters.len(),
            far as usize + 1,
            "pre-swap: the long way around"
        );
    }

    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..3)
        .map(|_| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = NetClient::connect(server.local_addr()).expect("connect");
                let pairs = all_pairs();
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for r in client.query_batch(&pairs).expect("batch keeps working") {
                        r.expect("no pair may fail across the swap");
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(30));
    let day = engine0(&server)
        .apply_delta(&ring_shortcut_delta(RING, 0))
        .expect("delta applies");
    assert_eq!(day, 1);
    thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    let served: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(served > 0);

    // Remote clients see the new generation: epoch bumped, and the
    // day-1 shortcut is the served route.
    let mut probe = NetClient::connect(server.local_addr()).expect("connect");
    assert_eq!(probe.epoch().expect("epoch"), (1, 1));
    let after = probe
        .query_batch(&[(ring_ip(0), ring_ip(far))])
        .expect("post-swap query")[0]
        .clone()
        .expect("routable");
    assert_eq!(after.fwd_clusters.len(), 2, "post-swap: the shortcut");
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.errors, 0);
}

fn two_shard_server(rings: [u32; 2], cfg: ServerConfig) -> NetServer {
    let registry = ShardRegistry::from_engines(vec![
        (ShardId(0), ring_engine(rings[0])),
        (ShardId(1), ring_engine(rings[1])),
    ])
    .expect("two-shard registry");
    NetServer::bind("127.0.0.1:0", Arc::new(registry), cfg).expect("bind ephemeral port")
}

#[test]
fn shards_route_independently_behind_one_listener() {
    // Same addresses, different worlds: ring 12 on shard 0, ring 8 on
    // shard 1 — so the same query must come back with shard-specific
    // routes, which proves frames reach the shard they name.
    let server = two_shard_server([12, 8], ServerConfig::default());
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    let listed = client.shards().expect("shards");
    assert_eq!(
        listed
            .iter()
            .map(|s| (s.shard, s.epoch, s.day))
            .collect::<Vec<_>>(),
        vec![(0, 0, 0), (1, 0, 0)]
    );

    let pair = [(ring_ip(0), ring_ip(6))];
    // Ring 12: 0 -> 6 is 6 hops either way around.
    let on_0 = client.query_batch(&pair).expect("shard 0 batch")[0]
        .clone()
        .expect("routable")
        .into_predicted();
    assert_eq!(on_0.fwd_clusters.len(), 7);
    // Ring 8: 0 -> 6 is 2 hops going backwards.
    let on_1 = client
        .query_batch_on(ShardId(1), &pair)
        .expect("shard 1 batch")[0]
        .clone()
        .expect("routable")
        .into_predicted();
    assert_eq!(on_1.fwd_clusters.len(), 3);

    // Per-shard stats see per-shard load only.
    assert_eq!(client.stats_on(ShardId(1)).expect("stats").queries, 1);
}

#[test]
fn unknown_shard_gets_a_typed_error_and_the_connection_survives() {
    let server = ring_server(ServerConfig::default());
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let missing = ShardId(7);

    fn assert_unknown_shard<T: std::fmt::Debug>(r: Result<T, NetError>) {
        match r {
            Err(NetError::Remote(fault)) => assert_eq!(fault.code, ErrorCode::UnknownShard),
            other => panic!("want typed UnknownShard, got {other:?}"),
        }
    }
    assert_unknown_shard(client.query_batch_on(missing, &[(ring_ip(0), ring_ip(1))]));
    assert_unknown_shard(client.epoch_on(missing));
    assert_unknown_shard(client.stats_on(missing));
    assert_unknown_shard(client.resolve_on(missing, ring_ip(0)));

    // Four per-frame faults, zero connection losses.
    client.ping().expect("connection survives unknown shards");
    assert!(client
        .query_batch(&[(ring_ip(0), ring_ip(1))])
        .expect("shard 0 still serves")[0]
        .is_ok());
    assert!(server.counters().faults >= 4);
}

#[test]
fn swap_on_one_shard_is_lossless_and_invisible_on_the_other() {
    let server = Arc::new(two_shard_server([RING, RING], ServerConfig::default()));
    let far = RING / 2;

    // Hammer both shards while the delta lands on shard 0 only.
    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = [ShardId(0), ShardId(1), ShardId(0), ShardId(1)]
        .into_iter()
        .map(|shard| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = NetClient::connect(server.local_addr()).expect("connect");
                let pairs = all_pairs();
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for r in client
                        .query_batch_on(shard, &pairs)
                        .expect("batch keeps working")
                    {
                        r.expect("no pair may fail on either shard across the swap");
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(30));
    let day = server
        .registry()
        .apply_delta(ShardId(0), &ring_shortcut_delta(RING, 0))
        .expect("delta applies");
    assert_eq!(day, 1);
    thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    let served: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(served > 0);

    let mut probe = NetClient::connect(server.local_addr()).expect("connect");
    assert_eq!(probe.epoch().expect("epoch"), (1, 1));
    assert_eq!(
        probe.epoch_on(ShardId(1)).expect("epoch"),
        (0, 0),
        "shard 1 must not see shard 0's delta"
    );
    let pair = [(ring_ip(0), ring_ip(far))];
    let on_0 = probe.query_batch(&pair).expect("batch")[0]
        .clone()
        .expect("routable")
        .into_predicted();
    assert_eq!(on_0.fwd_clusters.len(), 2, "shard 0 serves the shortcut");
    let on_1 = probe.query_batch_on(ShardId(1), &pair).expect("batch")[0]
        .clone()
        .expect("routable")
        .into_predicted();
    assert_eq!(
        on_1.fwd_clusters.len(),
        far as usize + 1,
        "shard 1 still serves the long way around"
    );
    let s0 = probe.stats().expect("stats");
    let s1 = probe.stats_on(ShardId(1)).expect("stats");
    assert_eq!((s0.swaps, s0.errors), (1, 0));
    assert_eq!((s1.swaps, s1.errors), (0, 0));
}

#[test]
fn hostile_pipeliner_gets_typed_overloaded_not_unbounded_queueing() {
    // A tiny in-flight cap and a client that floods 64 large batches
    // without reading a byte: the responder's replies (~½ MB each)
    // overrun the socket buffers and block it, the reader hits the
    // cap, and every excess request must come back as a typed
    // Overloaded error — in request order, on a connection that then
    // keeps serving.
    let server = ring_server(ServerConfig {
        max_conns: 4,
        max_inflight: 2,
        ..ServerConfig::default()
    });
    let raw = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = std::io::BufReader::new(raw.try_clone().expect("clone"));
    let mut write_half = raw.try_clone().expect("clone");

    const FLOOD: u64 = 64;
    let batch = Frame::QueryBatch {
        shard: ShardId::DEFAULT,
        pairs: vec![(ring_ip(0), ring_ip(6)); Limits::default().max_batch as usize],
    };
    let writer = thread::spawn(move || {
        for id in 1..=FLOOD {
            write_half
                .write_all(&batch.encode(id))
                .expect("flood writes complete");
        }
    });

    // Give the flood time to pile up against a reply path nobody is
    // draining, then read everything back.
    thread::sleep(Duration::from_millis(200));
    let reply_limits = Limits {
        max_frame_bytes: 32 << 20,
        max_batch: Limits::default().max_batch,
    };
    let mut served = 0u64;
    let mut overloaded = 0u64;
    for want_id in 1..=FLOOD {
        let (id, frame) = read_frame(&mut reader, &reply_limits)
            .expect("reply readable")
            .expect("one reply per request");
        assert_eq!(id, want_id, "replies (rejections included) stay in order");
        match frame {
            Frame::PathBatch { results } => {
                assert!(results.iter().all(|r| r.is_ok()));
                served += 1;
            }
            Frame::Error { fault } => {
                assert_eq!(fault.code, ErrorCode::Overloaded);
                overloaded += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    writer.join().expect("writer");
    assert_eq!(served + overloaded, FLOOD);
    assert!(served >= 1, "the in-flight window is still served");
    assert!(
        overloaded >= 1,
        "a flood beyond the cap must see typed rejections"
    );
    assert_eq!(server.counters().overloaded, overloaded);

    // The connection is intact: one more request, served normally.
    raw.try_clone()
        .expect("clone")
        .write_all(&Frame::Ping.encode(FLOOD + 1))
        .expect("ping writes");
    let (id, frame) = read_frame(&mut reader, &reply_limits)
        .expect("pong readable")
        .expect("pong");
    assert_eq!(id, FLOOD + 1);
    assert!(matches!(frame, Frame::Pong));
}

#[test]
fn shared_request_budget_rejects_typed_across_many_connections() {
    // A server-wide request-memory budget barely bigger than one large
    // batch, and several connections flooding large batches without
    // reading a byte: replies back up, queued requests pile against
    // the *shared* budget, and the excess must come back as typed
    // Overloaded errors — per request, in order, with every connection
    // still serving afterwards and zero protocol faults. This is the
    // cross-connection bound the per-connection in-flight cap cannot
    // give: each connection here stays far under `max_inflight`.
    let batch_pairs = Limits::default().max_batch as usize;
    let server = ring_server(ServerConfig {
        max_conns: 8,
        max_inflight: 64,
        // ~1.5 large batches' worth of pair bytes.
        max_request_bytes: batch_pairs * 8 * 3 / 2,
        ..ServerConfig::default()
    });

    const CONNS: usize = 4;
    const FLOOD: u64 = 8;
    let batch = Frame::QueryBatch {
        shard: ShardId::DEFAULT,
        pairs: vec![(ring_ip(0), ring_ip(6)); batch_pairs],
    };
    let conns: Vec<TcpStream> = (0..CONNS)
        .map(|_| TcpStream::connect(server.local_addr()).expect("connect"))
        .collect();
    let writers: Vec<_> = conns
        .iter()
        .map(|c| {
            let mut w = c.try_clone().expect("clone");
            let batch = batch.clone();
            thread::spawn(move || {
                for id in 1..=FLOOD {
                    w.write_all(&batch.encode(id)).expect("flood writes");
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    // Let the floods pile up against responders nobody is draining.
    thread::sleep(Duration::from_millis(200));

    let reply_limits = Limits {
        max_frame_bytes: 32 << 20,
        max_batch: Limits::default().max_batch,
    };
    let mut served = 0u64;
    let mut overloaded = 0u64;
    for raw in &conns {
        let mut reader = std::io::BufReader::new(raw.try_clone().expect("clone"));
        for want_id in 1..=FLOOD {
            let (id, frame) = read_frame(&mut reader, &reply_limits)
                .expect("reply readable")
                .expect("one reply per request");
            assert_eq!(id, want_id, "rejections stay in request order");
            match frame {
                Frame::PathBatch { results } => {
                    assert!(results.iter().all(|r| r.is_ok()));
                    served += 1;
                }
                Frame::Error { fault } => {
                    assert_eq!(fault.code, ErrorCode::Overloaded);
                    overloaded += 1;
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        // Once its backlog drains, every connection still serves.
        raw.try_clone()
            .expect("clone")
            .write_all(&Frame::Ping.encode(FLOOD + 1))
            .expect("ping writes");
        let (id, frame) = read_frame(&mut reader, &reply_limits)
            .expect("pong readable")
            .expect("pong");
        assert_eq!(id, FLOOD + 1);
        assert!(matches!(frame, Frame::Pong));
    }
    assert_eq!(served + overloaded, CONNS as u64 * FLOOD);
    assert!(served >= 1, "within-budget requests are served");
    assert!(
        overloaded >= 1,
        "a flood beyond the shared budget must see typed rejections"
    );
    let counters = server.counters();
    assert_eq!(counters.overloaded, overloaded);
    assert_eq!(counters.faults, 0, "throttling is not a fault");
}

#[test]
fn call_surfaces_connection_level_faults_as_typed_remote_errors() {
    use inano_net::WireFault;
    use std::net::TcpListener;
    // A fake server that answers any request with a connection-level
    // fault: an Error frame carrying request id 0, the way NetServer
    // answers fatal framing errors and admission refusals.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let fake = thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        // Consume the request fully so the later close is a clean FIN.
        read_frame(&mut &stream, &Limits::default())
            .expect("request decodes")
            .expect("one frame");
        let frame = Frame::Error {
            fault: WireFault::new(ErrorCode::ShuttingDown, "going away"),
        };
        stream.write_all(&frame.encode(0)).expect("write fault");
    });
    let mut client = NetClient::connect(addr).expect("connect");
    match client.ping() {
        Err(NetError::Remote(fault)) => assert_eq!(fault.code, ErrorCode::ShuttingDown),
        other => panic!("want typed remote fault, got {other:?}"),
    }
    fake.join().unwrap();
}

#[test]
fn io_timeout_bounds_both_read_and_write_against_a_wedged_upstream() {
    use std::net::TcpListener;
    use std::time::Instant;
    // A wedged upstream: accepts and then neither reads nor writes —
    // the half-dead peer the `--mirror` refresh loop must never block
    // on forever. `set_io_timeout` has to bound *both* directions: a
    // one-sided timeout would still hang on whichever syscall it
    // missed.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let wedged = thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        // Hold the socket open, dead silent, until the test is done.
        thread::sleep(Duration::from_secs(30));
        drop(stream);
    });

    let mut client = NetClient::connect(addr).expect("connect");
    client
        .set_io_timeout(Some(Duration::from_millis(200)))
        .expect("set timeout");

    // Read path: a ping's write fits the socket buffer, so the stall
    // is in awaiting the reply.
    let t0 = Instant::now();
    assert!(client.ping().is_err(), "no reply can come");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "read timed out in bounded time, not {:?}",
        t0.elapsed()
    );

    // Write path: the peer never drains, so large submits eventually
    // fill both kernel buffers and block in write(2) — the write
    // timeout must surface that as an error, promptly.
    let mut client = NetClient::connect(addr).expect("reconnect");
    client
        .set_io_timeout(Some(Duration::from_millis(200)))
        .expect("set timeout");
    let big: Vec<(Ipv4, Ipv4)> = vec![(ring_ip(0), ring_ip(1)); 16_384];
    let t0 = Instant::now();
    let mut wedged_write = false;
    for _ in 0..256 {
        if client.submit_batch(&big).is_err() {
            wedged_write = true;
            break;
        }
    }
    assert!(wedged_write, "kernel buffers are finite; write must fail");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "write timed out in bounded time, not {:?}",
        t0.elapsed()
    );
    drop(client);
    drop(wedged); // detached: it sleeps out its 30s harmlessly
}

#[test]
fn server_shutdown_is_clean_and_idempotent() {
    let server = ring_server(ServerConfig::default());
    let addr = server.local_addr();
    let mut client = NetClient::connect(addr).expect("connect");
    client.ping().expect("served");
    server.shutdown();
    server.shutdown(); // idempotent
                       // The old connection is gone...
    assert!(client.ping().is_err());
    // ...and nobody listens anymore (a refused connect or an
    // immediately-dead socket are both acceptable outcomes).
    if let Ok(mut c) = NetClient::connect(addr) {
        assert!(c.ping().is_err());
    }
}
