//! Integration tests for the event-driven server internals the wire
//! semantics don't expose: the per-connection write-backlog bound and
//! dispatch fairness under a slow consumer, idle connections riding
//! alongside live traffic in one loop, and the `srv.loop.*` metrics
//! surfacing over the wire.

use inano_model::Ipv4;
use inano_net::demo::{ring_atlas, ring_ip, ring_predictor_config};
use inano_net::wire::{read_frame, Frame, Limits};
use inano_net::{NetClient, NetServer, ServerConfig};
use inano_obs::MetricValue;
use inano_service::{QueryEngine, ServiceConfig, ShardId};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

const RING: u32 = 12;

fn ring_server(cfg: ServerConfig) -> NetServer {
    let engine = Arc::new(QueryEngine::new(
        Arc::new(ring_atlas(RING, 0)),
        ServiceConfig {
            workers: 4,
            chunk: 16,
            predictor: ring_predictor_config(),
            ..ServiceConfig::default()
        },
    ));
    NetServer::bind_single("127.0.0.1:0", engine, cfg).expect("bind ephemeral port")
}

/// Read one `srv.*` series out of the server's metrics dump.
fn metric(server: &NetServer, name: &str) -> Option<MetricValue> {
    server
        .metrics()
        .dump()
        .entries
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
}

fn gauge(server: &NetServer, name: &str) -> u64 {
    match metric(server, name) {
        Some(MetricValue::Gauge(v)) => v,
        other => panic!("{name} should be a gauge, got {other:?}"),
    }
}

/// Poll `cond` until it holds or `secs` elapse.
fn wait_for(secs: u64, what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn slow_consumer_backlog_is_bounded_and_other_connections_stay_served() {
    // One connection floods max-size batches and reads nothing. Its
    // ~½MB replies can't all fit in socket buffers, so they queue on
    // the server — but only up to the write-backlog cap (2× the frame
    // limit): past it the loop stops dispatching that connection's
    // requests, and the backlog gauge must stay bounded no matter how
    // long the client sulks. Meanwhile a second connection must keep
    // getting served — one gorged peer can't starve the loop.
    let server = ring_server(ServerConfig::default());
    let glutton = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = glutton.try_clone().expect("clone");

    const FLOOD: u64 = 40;
    let batch = Frame::QueryBatch {
        shard: ShardId::DEFAULT,
        pairs: vec![(ring_ip(0), ring_ip(6)); Limits::default().max_batch as usize],
    };
    for id in 1..=FLOOD {
        // Requests are ~32KB each — under the inflight cap and the
        // budget, so every one is read and queued, never rejected.
        writer.write_all(&batch.encode(id)).expect("flood writes");
    }

    // The gate engages once queued replies pass the cap; with ~½MB
    // replies that takes a handful of completions.
    let cap = (Limits::default().max_frame_bytes as u64) * 2;
    wait_for(20, "the write-backlog gate to engage", || {
        gauge(&server, "srv.loop.write_backlog_bytes") > cap / 2
    });

    // Sample the gauge while the client keeps not reading: it may
    // overshoot the cap by at most the one reply in flight when the
    // gate closed (plus what the socket buffers later hand back).
    let bound = cap + Limits::default().max_frame_bytes as u64;
    for _ in 0..30 {
        let backlog = gauge(&server, "srv.loop.write_backlog_bytes");
        assert!(
            backlog <= bound,
            "write backlog {backlog} exceeded its bound {bound}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Fairness: a polite second connection is served while the
    // glutton's service is gated.
    let mut polite = NetClient::connect(server.local_addr()).expect("connect");
    polite.ping().expect("ping while glutton is gated");
    let results = polite
        .query_batch(&[(ring_ip(1), ring_ip(5))])
        .expect("query while glutton is gated");
    assert!(results[0].is_ok());

    // The glutton finally reads: every reply arrives, in request
    // order, all served (nothing was rejected — the flood sat below
    // the inflight cap; the gate stalls service, it sheds nothing).
    let mut reader = std::io::BufReader::new(glutton.try_clone().expect("clone"));
    let reply_limits = Limits {
        max_frame_bytes: 32 << 20,
        max_batch: Limits::default().max_batch,
    };
    for want_id in 1..=FLOOD {
        let (id, frame) = read_frame(&mut reader, &reply_limits)
            .expect("reply readable")
            .expect("one reply per request");
        assert_eq!(id, want_id, "replies stay in request order across the gate");
        match frame {
            Frame::PathBatch { results } => assert!(results.iter().all(|r| r.is_ok())),
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(server.counters().overloaded, 0);
    assert_eq!(server.counters().faults, 0);

    // Drained: the backlog gauge returns to zero.
    wait_for(20, "the backlog to drain", || {
        gauge(&server, "srv.loop.write_backlog_bytes") == 0
    });
}

#[test]
fn idle_connections_ride_along_with_live_traffic() {
    // Hundreds of connections that never send a byte must cost the
    // loop nothing but their registrations — and live traffic through
    // the same loop keeps its answers. (The 50k version of this is
    // the `net_throughput --connections` soak; this keeps a scaled
    // replica in the test suite.)
    const IDLE: usize = 400;
    let server = ring_server(ServerConfig {
        max_conns: IDLE + 16,
        ..ServerConfig::default()
    });
    let idles: Vec<TcpStream> = (0..IDLE)
        .map(|i| {
            TcpStream::connect(server.local_addr())
                .unwrap_or_else(|e| panic!("idle connect {i}: {e}"))
        })
        .collect();
    wait_for(20, "all idle connections to be accepted", || {
        server.counters().active >= IDLE
    });

    // Live traffic answers normally through the crowd.
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let pairs: Vec<(Ipv4, Ipv4)> = (0..RING - 1)
        .map(|i| (ring_ip(i), ring_ip(i + 1)))
        .collect();
    for _ in 0..5 {
        let results = client.query_batch(&pairs).expect("batch among idles");
        assert!(results.iter().all(|r| r.is_ok()));
    }

    // The loop's descriptor gauge tracks the crowd: every connection
    // plus the listener and the notify pipe.
    assert_eq!(
        gauge(&server, "srv.loop.fds"),
        server.counters().active as u64 + 2
    );
    assert_eq!(server.counters().accepted, IDLE as u64 + 1);
    assert_eq!(server.counters().rejected, 0);

    // Mass disconnect: the loop reaps every idle registration.
    drop(idles);
    wait_for(20, "idle connections to be reaped", || {
        server.counters().active == 1
    });
    assert_eq!(gauge(&server, "srv.loop.fds"), 3);
    client
        .ping()
        .expect("survivor still served after the reaping");
}

#[test]
fn loop_metrics_are_visible_over_the_wire() {
    // The event loop's own series travel the same path as everything
    // else: the wire `Metrics` frame. A client sees wakeups counting,
    // descriptors gauged, the ready-events histogram populated, and
    // the accept-retry counter present (and zero on a healthy server).
    let server = ring_server(ServerConfig::default());
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");
    let dump = client.metrics().expect("metrics over the wire");
    let find = |name: &str| {
        dump.entries
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing from wire dump"))
            .1
            .clone()
    };
    match find("srv.loop.wakeups") {
        MetricValue::Counter(n) => assert!(n > 0, "the loop must have woken to serve this"),
        other => panic!("srv.loop.wakeups should be a counter, got {other:?}"),
    }
    match find("srv.loop.fds") {
        // This one connection, the listener, the notify pipe.
        MetricValue::Gauge(n) => assert_eq!(n, 3),
        other => panic!("srv.loop.fds should be a gauge, got {other:?}"),
    }
    match find("srv.loop.write_backlog_bytes") {
        MetricValue::Gauge(_) => {}
        other => panic!("srv.loop.write_backlog_bytes should be a gauge, got {other:?}"),
    }
    match find("srv.accept_retries") {
        MetricValue::Counter(n) => assert_eq!(n, 0, "healthy server never retried accept"),
        other => panic!("srv.accept_retries should be a counter, got {other:?}"),
    }
    match find("srv.loop.ready_events") {
        MetricValue::Histogram(buckets) => {
            assert!(
                buckets.iter().sum::<u64>() > 0,
                "every wake records its ready-event count"
            );
        }
        other => panic!("srv.loop.ready_events should be a histogram, got {other:?}"),
    }
}
