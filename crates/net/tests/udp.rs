//! Integration tests for the datagram plane: a live server with
//! `--udp` enabled, driven by real UDP sockets.
//!
//! Covers the transport's whole contract: datagram answers equal
//! stream answers, stream-only frames get a typed `NotOnDatagram`,
//! internet noise is dropped silently (and counted) without
//! disturbing the plane, oversized replies downgrade to a typed
//! `FrameTooLarge`, the per-source token bucket sheds with a typed
//! `Overloaded` and then goes silent, late/duplicate replies are
//! discarded by the client, blind resends are idempotent, and — the
//! acceptance bar — a client recovers end to end through injected
//! packet loss in both directions.

use inano_model::{ErrorCode, Ipv4};
use inano_net::demo::{ring_atlas, ring_ip, ring_predictor_config};
use inano_net::wire::{decode_datagram, Frame, Limits};
use inano_net::{NetClient, NetError, NetServer, ServerConfig, UdpQuerier, UdpRetry};
use inano_service::{QueryEngine, ServiceConfig, ShardId};
use std::net::UdpSocket;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const RING: u32 = 12;

fn ring_engine(ring: u32) -> Arc<QueryEngine> {
    Arc::new(QueryEngine::new(
        Arc::new(ring_atlas(ring, 0)),
        ServiceConfig {
            workers: 4,
            chunk: 16,
            predictor: ring_predictor_config(),
            ..ServiceConfig::default()
        },
    ))
}

/// A ring-world server with the datagram plane open. Rate limit off
/// unless a test turns it on — every test client shares 127.0.0.1.
fn udp_server(cfg: ServerConfig) -> NetServer {
    let cfg = ServerConfig {
        udp: Some("127.0.0.1:0".parse().expect("literal addr")),
        ..cfg
    };
    NetServer::bind_single("127.0.0.1:0", ring_engine(RING), cfg).expect("bind ephemeral port")
}

fn no_rate() -> ServerConfig {
    ServerConfig {
        udp_rate: 0,
        ..ServerConfig::default()
    }
}

fn udp_counter(server: &NetServer, name: &str) -> u64 {
    match server
        .metrics()
        .dump()
        .entries
        .into_iter()
        .find(|(n, _)| n == name)
    {
        Some((_, inano_obs::MetricValue::Counter(v))) => v,
        other => panic!("{name} missing from dump: {other:?}"),
    }
}

fn all_pairs() -> Vec<(Ipv4, Ipv4)> {
    (0..RING)
        .flat_map(|s| {
            (0..RING)
                .filter(move |&d| d != s)
                .map(move |d| (ring_ip(s), ring_ip(d)))
        })
        .collect()
}

#[test]
fn datagram_answers_equal_stream_answers() {
    let server = udp_server(no_rate());
    let udp_addr = server.udp_addr().expect("udp plane enabled");
    let mut dgram = UdpQuerier::connect(udp_addr).expect("bind querier");
    let mut stream = NetClient::connect(server.local_addr()).expect("connect");

    dgram.ping().expect("datagram ping");

    // The whole single-shot subset, answer for answer.
    let pairs = all_pairs();
    let via_udp = dgram.query_batch(&pairs).expect("datagram batch");
    let via_tcp = stream.query_batch(&pairs).expect("stream batch");
    assert_eq!(via_udp, via_tcp);

    assert_eq!(
        dgram.resolve(ring_ip(3)).expect("datagram resolve"),
        stream.resolve(ring_ip(3)).expect("stream resolve")
    );
    assert_eq!(
        dgram.epoch().expect("datagram epoch"),
        stream.epoch().expect("stream epoch")
    );
    assert_eq!(
        dgram.atlas_head().expect("datagram head"),
        stream.atlas_head().expect("stream head")
    );
    // Stats move under load; compare the stable identity fields.
    let s_udp = dgram.stats().expect("datagram stats");
    let s_tcp = stream.stats().expect("stream stats");
    assert_eq!((s_udp.epoch, s_udp.day), (s_tcp.epoch, s_tcp.day));
    assert!(s_udp.queries >= pairs.len() as u64);

    // Shard addressing works on datagrams too.
    let (epoch, day) = dgram.epoch_on(ShardId::DEFAULT).expect("epoch on shard 0");
    assert_eq!((epoch, day), (0, 0));
    // ...and a shard the server does not host faults typed.
    match dgram.epoch_on(ShardId(9)) {
        Err(NetError::Remote(fault)) => assert_eq!(fault.code, ErrorCode::UnknownShard),
        other => panic!("want UnknownShard, got {other:?}"),
    }

    assert_eq!(dgram.resends(), 0, "loopback needed no retries");
    assert_eq!(dgram.stale_replies(), 0);
    let n_in = udp_counter(&server, "srv.udp.datagrams_in");
    let n_out = udp_counter(&server, "srv.udp.datagrams_out");
    assert!(n_in >= 8, "plane counted its datagrams: {n_in}");
    assert_eq!(n_in, n_out, "every admitted request got one reply");
}

#[test]
fn stream_only_frames_get_a_typed_not_on_datagram() {
    let server = udp_server(no_rate());
    let udp_addr = server.udp_addr().expect("udp plane enabled");
    let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
    sock.connect(udp_addr).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    // Multi-frame exchanges need the stream transport; a datagram
    // carrying one gets a typed refusal, echoing the request id.
    let stream_only = [
        Frame::ListShards,
        Frame::Metrics,
        Frame::Events { since_seq: 0 },
        Frame::FetchFullChunk {
            shard: ShardId::DEFAULT,
            epoch_tag: 1,
            idx: 0,
        },
        Frame::FetchDelta {
            shard: ShardId::DEFAULT,
            have_day: 0,
        },
    ];
    let mut buf = [0u8; 2048];
    for (i, frame) in stream_only.iter().enumerate() {
        let id = 100 + i as u64;
        sock.send(&frame.encode(id)).expect("send");
        let n = sock.recv(&mut buf).expect("a typed reply comes back");
        let (got_id, reply) =
            decode_datagram(&buf[..n], &Limits::default()).expect("reply decodes");
        assert_eq!(got_id, id);
        match reply {
            Frame::Error { fault } => {
                assert_eq!(fault.code, ErrorCode::NotOnDatagram, "frame {frame:?}");
            }
            other => panic!("want NotOnDatagram for {frame:?}, got {other:?}"),
        }
    }

    // The refusals did not poison the plane.
    let mut q = UdpQuerier::connect(udp_addr).expect("bind querier");
    q.ping().expect("plane still answers");
}

#[test]
fn garbage_datagrams_are_dropped_counted_and_harmless() {
    let server = udp_server(no_rate());
    let udp_addr = server.udp_addr().expect("udp plane enabled");
    let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
    sock.connect(udp_addr).expect("connect");
    sock.set_read_timeout(Some(Duration::from_millis(200)))
        .expect("timeout");

    // Noise: short fragments, wrong magic, ancient version. None of
    // it is attributable, so none of it may draw a reply — answering
    // would make the server a reflection amplifier.
    let ping = Frame::Ping.encode(7);
    let mut old_version = ping.clone();
    old_version[4] = 1; // below MIN_VERSION
    let mut bad_magic = ping.clone();
    bad_magic[0] ^= 0xff;
    let noise: [&[u8]; 5] = [b"", b"hi", &ping[..10], &bad_magic, &old_version];
    for bytes in noise {
        sock.send(bytes).expect("send noise");
    }
    let mut buf = [0u8; 256];
    assert!(
        sock.recv(&mut buf).is_err(),
        "garbage datagrams must draw no reply"
    );

    // Counted (the empty datagram included), and the plane still
    // serves a well-formed request afterwards.
    let dropped = udp_counter(&server, "srv.udp.truncated");
    assert_eq!(dropped, noise.len() as u64, "every noise datagram counted");
    let mut q = UdpQuerier::connect(udp_addr).expect("bind querier");
    q.ping().expect("plane still answers");
}

#[test]
fn oversize_replies_downgrade_to_a_typed_fault() {
    // A 256-byte frame limit admits a hefty QueryBatch request, but
    // the PathBatch *reply* for it will not fit the datagram cap —
    // the server must answer with a typed FrameTooLarge instead of a
    // truncated or dropped reply.
    let server = udp_server(ServerConfig {
        limits: Limits {
            max_frame_bytes: 256,
            max_batch: 1024,
        },
        ..no_rate()
    });
    let udp_addr = server.udp_addr().expect("udp plane enabled");
    let mut q = UdpQuerier::connect(udp_addr).expect("bind querier");
    let pairs: Vec<(Ipv4, Ipv4)> = (0..24)
        .map(|i| (ring_ip(i % RING), ring_ip((i + 1) % RING)))
        .collect();
    match q.query_batch(&pairs) {
        Err(NetError::Remote(fault)) => {
            assert_eq!(fault.code, ErrorCode::FrameTooLarge);
            assert!(
                fault.message.contains("datagram"),
                "the fault explains the transport: {}",
                fault.message
            );
        }
        other => panic!("want a typed FrameTooLarge, got {other:?}"),
    }
    assert_eq!(udp_counter(&server, "srv.udp.oversize_reply"), 1);

    // A reply that fits still flows on the same socket.
    let one = q.query_batch(&pairs[..1]).expect("small batch fits");
    assert!(one[0].is_ok());
}

#[test]
fn per_source_bucket_sheds_typed_then_goes_silent() {
    // rate 1/s, burst 1: the first datagram is admitted, the second
    // lands in the shed band (typed Overloaded), the third is beyond
    // -burst and gets silence.
    let server = udp_server(ServerConfig {
        udp_rate: 1,
        udp_burst: 1,
        ..ServerConfig::default()
    });
    let udp_addr = server.udp_addr().expect("udp plane enabled");
    let mut q = UdpQuerier::connect(udp_addr).expect("bind querier");
    q.set_retry(UdpRetry {
        timeout: Duration::from_millis(100),
        max_timeout: Duration::from_millis(100),
        attempts: 1,
    });

    q.ping().expect("first datagram admitted");
    match q.ping() {
        Err(NetError::Remote(fault)) => assert_eq!(fault.code, ErrorCode::Overloaded),
        other => panic!("want typed Overloaded shed, got {other:?}"),
    }
    // Keep hammering: within a few more datagrams the balance is past
    // -burst and the source gets silence instead of typed sheds.
    let mut silenced = false;
    for _ in 0..4 {
        match q.ping() {
            Err(NetError::Remote(fault)) => assert_eq!(fault.code, ErrorCode::Overloaded),
            Err(NetError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::TimedOut);
                silenced = true;
                break;
            }
            other => panic!("want shed or silence, got {other:?}"),
        }
    }
    assert!(silenced, "a flooding source must eventually get silence");
    assert!(udp_counter(&server, "srv.udp.shed") >= 2);

    // The bucket refills — from the bottom of the shed band, so a
    // flood digs a hole that takes several refill seconds to climb
    // out of (tokens ≈ -2 after the silence above, +1/s).
    thread::sleep(Duration::from_millis(3300));
    q.ping().expect("refilled bucket admits again");
}

#[test]
fn late_and_duplicate_replies_are_discarded() {
    // A fake "server" that precedes every real answer with garbage:
    // an id-mismatched reply (a late answer to some earlier attempt)
    // and an exact duplicate of the previous answer.
    let fake = UdpSocket::bind("127.0.0.1:0").expect("bind fake server");
    let fake_addr = fake.local_addr().expect("addr");
    let server = thread::spawn(move || {
        let mut buf = [0u8; 2048];
        let mut last_reply: Option<Vec<u8>> = None;
        for _ in 0..2 {
            let (n, peer) = fake.recv_from(&mut buf).expect("request");
            let (id, frame) =
                decode_datagram(&buf[..n], &Limits::default()).expect("request decodes");
            assert!(matches!(frame, Frame::Ping));
            // A reply nobody asked for (wrong id)...
            fake.send_to(&Frame::Pong.encode(id ^ 0xdead), peer)
                .expect("send mismatched");
            // ...a duplicate of the previous exchange's reply...
            if let Some(dup) = &last_reply {
                fake.send_to(dup, peer).expect("send duplicate");
            }
            // ...and finally the real answer.
            let reply = Frame::Pong.encode(id);
            fake.send_to(&reply, peer).expect("send real");
            last_reply = Some(reply);
        }
    });

    let mut q = UdpQuerier::connect(fake_addr).expect("bind querier");
    q.ping().expect("first call survives the mismatched reply");
    q.ping()
        .expect("second call survives mismatch plus duplicate");
    server.join().expect("fake server");
    // Call one discarded 1 mismatch; call two discarded 1 mismatch +
    // 1 duplicate.
    assert_eq!(q.stale_replies(), 3);
    assert_eq!(q.resends(), 0, "discards must not trigger resends");
}

#[test]
fn blind_resends_are_idempotent() {
    // The retry story only works because resending the identical
    // datagram is safe: fire the same encoded request twice at a real
    // server and both answers must decode identical.
    let server = udp_server(no_rate());
    let udp_addr = server.udp_addr().expect("udp plane enabled");
    let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
    sock.connect(udp_addr).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    let request = Frame::QueryBatch {
        shard: ShardId::DEFAULT,
        pairs: vec![(ring_ip(0), ring_ip(5)), (ring_ip(3), ring_ip(9))],
    }
    .encode(42);
    sock.send(&request).expect("first send");
    sock.send(&request).expect("retry-storm send");

    let mut buf = [0u8; 4096];
    let n1 = sock.recv(&mut buf).expect("first reply");
    let first = decode_datagram(&buf[..n1], &Limits::default()).expect("decodes");
    let n2 = sock.recv(&mut buf).expect("second reply");
    let second = decode_datagram(&buf[..n2], &Limits::default()).expect("decodes");
    assert_eq!(first.0, 42);
    assert_eq!(first, second, "identical requests, identical answers");
    match first.1 {
        Frame::PathBatch { results } => assert!(results.iter().all(|r| r.is_ok())),
        other => panic!("want PathBatch, got {other:?}"),
    }
}

/// The acceptance bar: a lossy path — first request datagram eaten,
/// first reply datagram eaten — and the client still gets its answer
/// through capped-backoff resends.
#[test]
fn retry_recovers_through_packet_loss_in_both_directions() {
    let server = udp_server(no_rate());
    let udp_addr = server.udp_addr().expect("udp plane enabled");

    // The relay: what the client believes is the server. Drops the
    // first inbound request and the first outbound reply it sees,
    // then forwards faithfully.
    let relay = UdpSocket::bind("127.0.0.1:0").expect("bind relay");
    let relay_addr = relay.local_addr().expect("relay addr");
    let relay_thread = thread::spawn(move || {
        let upstream = UdpSocket::bind("127.0.0.1:0").expect("bind upstream leg");
        upstream.connect(udp_addr).expect("connect upstream");
        upstream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        relay
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut buf = [0u8; 4096];
        let mut requests_seen = 0u32;
        let mut replies_seen = 0u32;
        loop {
            let (n, client) = match relay.recv_from(&mut buf) {
                Ok(x) => x,
                Err(_) => return, // client done, test over
            };
            requests_seen += 1;
            if requests_seen == 1 {
                continue; // the void eats the first request
            }
            upstream.send(&buf[..n]).expect("forward request");
            let n = upstream.recv(&mut buf).expect("server answers");
            replies_seen += 1;
            if replies_seen == 1 {
                continue; // ...and the first reply
            }
            relay.send_to(&buf[..n], client).expect("forward reply");
        }
    });

    let mut q = UdpQuerier::connect(relay_addr).expect("bind querier");
    q.set_retry(UdpRetry {
        timeout: Duration::from_millis(150),
        max_timeout: Duration::from_millis(600),
        attempts: 5,
    });
    let results = q
        .query_batch(&[(ring_ip(1), ring_ip(7))])
        .expect("the answer made it through the loss");
    assert!(results[0].is_ok());
    assert!(
        q.resends() >= 2,
        "recovery took resends (one per eaten datagram), saw {}",
        q.resends()
    );
    drop(q); // relay's recv_from times out and the thread exits
    relay_thread.join().expect("relay");
}
