//! Property tests for the wire codec: encode → decode is the identity
//! for every frame type (request id included), error frames round-trip
//! every defined code, and the limit edges behave exactly at the
//! boundary — a batch of `max_batch` pairs decodes, `max_batch + 1`
//! is a typed per-frame error, a payload of `max_frame_bytes` decodes,
//! one byte more is fatal.

use inano_core::{AtlasVersion, DeltaHandle};
use inano_model::{ErrorCode, Ipv4};
use inano_net::wire::{
    datagram_cap, decode_datagram, read_frame, DatagramError, Frame, Limits, ReadError,
    CHUNK_WIRE_OVERHEAD, HEADER_BYTES, TRACE_FLAG,
};
use inano_net::{chunk_size_for, WireFault, WirePath, WireResolution, WireShardInfo, WireStats};
use inano_obs::{
    Event, EventKind, EventsPage, MetricValue, MetricsDump, MetricsRegistry, TraceTimings,
};
use inano_service::ShardId;
use proptest::prelude::*;

prop_compose! {
    fn arb_fault()(
        code_idx in 0usize..ErrorCode::ALL.len(),
        message in proptest::collection::vec(32u8..127, 0..80),
    ) -> WireFault {
        WireFault::new(
            ErrorCode::ALL[code_idx],
            String::from_utf8(message).expect("printable ASCII"),
        )
    }
}

prop_compose! {
    fn arb_path()(
        fwd_clusters in proptest::collection::vec(any::<u32>(), 0..12),
        rev_clusters in proptest::collection::vec(any::<u32>(), 0..12),
        fwd_as in proptest::collection::vec(any::<u32>(), 0..8),
        rev_as in proptest::collection::vec(any::<u32>(), 0..8),
        rtt_ms in 0.0f64..1e4,
        loss in 0.0f64..1.0,
    ) -> WirePath {
        WirePath { fwd_clusters, rev_clusters, fwd_as, rev_as, rtt_ms, loss }
    }
}

prop_compose! {
    fn arb_resolution()(
        prefix in any::<u32>(),
        cluster in any::<u32>(),
        origin_as in proptest::option::of(any::<u32>()),
        cluster_as in proptest::option::of(any::<u32>()),
        refined_providers in any::<bool>(),
    ) -> WireResolution {
        WireResolution { prefix, cluster, origin_as, cluster_as, refined_providers }
    }
}

prop_compose! {
    fn arb_stats()(
        queries in any::<u64>(),
        errors in any::<u64>(),
        qps in 0.0f64..1e9,
        p50_us in any::<u64>(),
        p99_us in any::<u64>(),
        cache_hits in any::<u64>(),
        cache_misses in any::<u64>(),
        cache_evictions in any::<u64>(),
        cache_hit_rate in 0.0f64..1.0,
        swaps in any::<u64>(),
        epoch in any::<u64>(),
        day in any::<u32>(),
        workers in any::<u32>(),
        latency_buckets in proptest::collection::vec(any::<u64>(), 0..48),
    ) -> WireStats {
        WireStats {
            queries, errors, qps, p50_us, p99_us, cache_hits, cache_misses,
            cache_evictions, cache_hit_rate, swaps, epoch, day, workers,
            latency_buckets,
        }
    }
}

prop_compose! {
    fn arb_shard_info()(
        shard in any::<u16>(),
        epoch in any::<u64>(),
        day in any::<u32>(),
    ) -> WireShardInfo {
        WireShardInfo { shard, epoch, day }
    }
}

prop_compose! {
    fn arb_version()(
        day in any::<u32>(),
        epoch_tag in any::<u64>(),
        full_len in any::<u64>(),
        chunk_size in any::<u32>(),
    ) -> AtlasVersion {
        AtlasVersion { day, epoch_tag, full_len, chunk_size }
    }
}

prop_compose! {
    fn arb_delta_handle()(
        from_day in any::<u32>(),
        to_day in any::<u32>(),
        len in any::<u64>(),
        chunk_size in any::<u32>(),
    ) -> DeltaHandle {
        DeltaHandle { from_day, to_day, len, chunk_size }
    }
}

prop_compose! {
    fn arb_metric_value()(
        kind in 0usize..3,
        v in any::<u64>(),
        buckets in proptest::collection::vec(any::<u64>(), 0..40),
    ) -> MetricValue {
        match kind {
            0 => MetricValue::Counter(v),
            1 => MetricValue::Gauge(v),
            _ => MetricValue::Histogram(buckets),
        }
    }
}

prop_compose! {
    // Sorted and name-deduped, matching the invariant `MetricsDump`
    // holds (and the decoder restores), so round-trip equality is fair.
    fn arb_dump()(
        raw in proptest::collection::vec(
            (proptest::collection::vec(97u8..123, 1..24), arb_metric_value()),
            0..12,
        ),
    ) -> MetricsDump {
        let mut entries: Vec<(String, MetricValue)> = raw
            .into_iter()
            .map(|(name, v)| (String::from_utf8(name).expect("ascii"), v))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|a, b| a.0 == b.0);
        MetricsDump { entries }
    }
}

prop_compose! {
    fn arb_timings()(
        decode_us in any::<u32>(),
        queue_us in any::<u32>(),
        engine_us in any::<u32>(),
        encode_us in any::<u32>(),
    ) -> TraceTimings {
        TraceTimings { decode_us, queue_us, engine_us, encode_us }
    }
}

prop_compose! {
    fn arb_event_kind()(code in 1u8..=9) -> EventKind {
        EventKind::from_code(code).expect("codes 1..=9 are all defined")
    }
}

prop_compose! {
    // Strictly increasing seqs, as the journal guarantees and the
    // decoder restores (it re-sorts by seq), so round-trip equality
    // is fair.
    fn arb_events_page()(
        start in 0u64..1_000_000,
        lost in any::<u64>(),
        raw in proptest::collection::vec(
            (
                1u64..50,
                any::<u32>(),
                arb_event_kind(),
                proptest::collection::vec(32u8..127, 0..40),
            ),
            0..10,
        ),
    ) -> EventsPage {
        let mut seq = start;
        let events: Vec<Event> = raw
            .into_iter()
            .map(|(gap, t_ms, kind, detail)| {
                seq += gap;
                Event {
                    seq,
                    t_ms: t_ms as u64,
                    kind,
                    detail: String::from_utf8(detail).expect("printable ASCII"),
                }
            })
            .collect();
        let next_seq = events.last().map(|e| e.seq + 1).unwrap_or(start);
        EventsPage { events, lost, next_seq }
    }
}

prop_compose! {
    fn arb_result()(
        is_ok in any::<bool>(),
        path in arb_path(),
        fault in arb_fault(),
    ) -> Result<WirePath, WireFault> {
        if is_ok { Ok(path) } else { Err(fault) }
    }
}

// One strategy per frame type, selected by index so every variant is
// exercised (the stand-in proptest has no `prop_oneof!`).
prop_compose! {
    fn arb_frame()(
        variant in 0usize..25,
        shard in any::<u16>(),
        pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..40),
        results in proptest::collection::vec(arb_result(), 0..20),
        ip in any::<u32>(),
        resolution in arb_resolution(),
        stats in arb_stats(),
        epoch in any::<u64>(),
        day in any::<u32>(),
        shard_infos in proptest::collection::vec(arb_shard_info(), 0..16),
        version in arb_version(),
        handle in proptest::option::of(arb_delta_handle()),
        epoch_tag in any::<u64>(),
        idx in any::<u32>(),
        crc in any::<u64>(),
        chunk in proptest::collection::vec(any::<u8>(), 0..300),
        fault in arb_fault(),
        dump in arb_dump(),
        timings in arb_timings(),
        page in arb_events_page(),
    ) -> Frame {
        match variant {
            0 => Frame::Ping,
            1 => Frame::Pong,
            2 => Frame::QueryBatch {
                shard: ShardId(shard),
                pairs: pairs.into_iter().map(|(s, d)| (Ipv4(s), Ipv4(d))).collect(),
            },
            3 => Frame::PathBatch { results },
            4 => Frame::Resolve { shard: ShardId(shard), ip: Ipv4(ip) },
            5 => Frame::ResolveReply { resolution },
            6 => Frame::Stats { shard: ShardId(shard) },
            7 => Frame::StatsReply { stats },
            8 => Frame::Epoch { shard: ShardId(shard) },
            9 => Frame::EpochReply { epoch, day },
            10 => Frame::ListShards,
            11 => Frame::ShardsReply { shards: shard_infos },
            12 => Frame::AtlasHead { shard: ShardId(shard) },
            13 => Frame::AtlasHeadReply { version },
            14 => Frame::FetchFullChunk { shard: ShardId(shard), epoch_tag, idx },
            15 => Frame::FetchDelta { shard: ShardId(shard), have_day: day },
            16 => Frame::DeltaReply { handle },
            17 => Frame::FetchDeltaChunk { shard: ShardId(shard), from_day: day, idx },
            18 => Frame::ChunkReply { idx, crc, bytes: chunk },
            19 => Frame::Error { fault },
            20 => Frame::Metrics,
            21 => Frame::MetricsReply { dump },
            22 => Frame::TraceReply { timings },
            23 => Frame::Events { since_seq: epoch },
            _ => Frame::EventsReply { page },
        }
    }
}

fn decode(bytes: &[u8], limits: &Limits) -> Result<Option<(u64, Frame)>, ReadError> {
    read_frame(&mut &bytes[..], limits)
}

proptest! {
    #[test]
    fn every_frame_type_round_trips(frame in arb_frame(), id in any::<u64>()) {
        let bytes = frame.encode(id);
        let (got_id, got) = decode(&bytes, &Limits::default())
            .expect("well-formed frame decodes")
            .expect("not EOF");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn error_frames_round_trip_every_code(fault in arb_fault(), id in any::<u64>()) {
        let frame = Frame::Error { fault };
        let bytes = frame.encode(id);
        let (got_id, got) = decode(&bytes, &Limits::default()).unwrap().unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, frame);
    }

    #[test]
    fn batch_limit_edge_is_exact(spare in 0u32..4) {
        // Small limit so the test is cheap; the check is on the count,
        // not the byte size.
        let limits = Limits { max_frame_bytes: 1 << 20, max_batch: 64 + spare };
        let at_limit = Frame::QueryBatch {
            shard: ShardId(spare as u16),
            pairs: vec![(Ipv4(1), Ipv4(2)); limits.max_batch as usize],
        };
        let (_, got) = decode(&at_limit.encode(1), &limits)
            .expect("at the limit decodes")
            .unwrap();
        prop_assert_eq!(got, at_limit);

        let over = Frame::QueryBatch {
            shard: ShardId(spare as u16),
            pairs: vec![(Ipv4(1), Ipv4(2)); limits.max_batch as usize + 1],
        };
        match decode(&over.encode(2), &limits) {
            Err(ReadError::Frame { request_id, fault }) => {
                prop_assert_eq!(request_id, 2);
                prop_assert_eq!(fault.code, ErrorCode::BatchTooLarge);
            }
            other => prop_assert!(false, "want per-frame error, got {other:?}"),
        }
    }

    #[test]
    fn frame_size_limit_edge_is_exact(pad in 0u32..32) {
        // An Error frame whose payload lands exactly on the limit.
        let msg_len = 100 + pad as usize;
        let frame = Frame::Error {
            fault: WireFault::new(ErrorCode::NoPath, "x".repeat(msg_len)),
        };
        let bytes = frame.encode(5);
        let payload_len = (bytes.len() - HEADER_BYTES) as u32;

        let exact = Limits { max_frame_bytes: payload_len, max_batch: 16 };
        let (_, got) = decode(&bytes, &exact).expect("exactly at the limit").unwrap();
        prop_assert_eq!(got, frame);

        let tight = Limits { max_frame_bytes: payload_len - 1, max_batch: 16 };
        match decode(&bytes, &tight) {
            Err(ReadError::Fatal(fault)) => {
                prop_assert_eq!(fault.code, ErrorCode::FrameTooLarge);
            }
            other => prop_assert!(false, "want fatal, got {other:?}"),
        }
    }

    #[test]
    fn chunk_replies_cut_by_chunk_size_for_always_fit_the_frame_limit(
        max_frame in 32u32..8192,
        fill in any::<u8>(),
    ) {
        // The sender-side rule (`chunk_size_for`) and the receiver-side
        // limit must agree at the exact edge: a maximal chunk decodes,
        // and one extra byte in the body is a fatal FrameTooLarge.
        let limits = Limits { max_frame_bytes: max_frame, max_batch: 16 };
        let cs = chunk_size_for(&limits);
        prop_assert!(cs >= 1);
        let frame = Frame::ChunkReply {
            idx: 0,
            crc: 7,
            bytes: vec![fill; cs as usize],
        };
        let bytes = frame.encode(3);
        let payload = (bytes.len() - HEADER_BYTES) as u32;
        prop_assert!(payload <= max_frame, "payload {payload} over {max_frame}");
        let (_, got) = decode(&bytes, &limits).expect("maximal chunk decodes").unwrap();
        prop_assert_eq!(got, frame);

        if payload == max_frame {
            // Exactly at the edge: cs + overhead filled the frame, so
            // one more body byte must be refused from the header alone.
            let over = Frame::ChunkReply {
                idx: 0,
                crc: 7,
                bytes: vec![fill; cs as usize + 1],
            };
            match decode(&over.encode(4), &limits) {
                Err(ReadError::Fatal(fault)) => {
                    prop_assert_eq!(fault.code, ErrorCode::FrameTooLarge);
                }
                other => prop_assert!(false, "want fatal, got {other:?}"),
            }
            prop_assert_eq!(payload, cs + CHUNK_WIRE_OVERHEAD);
        }
    }

    #[test]
    fn truncated_payloads_never_panic(frame in arb_frame(), cut in 1usize..24) {
        let bytes = frame.encode(9);
        if bytes.len() > HEADER_BYTES {
            let cut_at = HEADER_BYTES + (bytes.len() - HEADER_BYTES).saturating_sub(cut);
            // Mid-frame EOF must surface as an io error, never a panic.
            match decode(&bytes[..cut_at], &Limits::default()) {
                Err(ReadError::Io(_)) | Ok(Some(_)) => {}
                other => prop_assert!(false, "unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn merging_per_server_dumps_equals_the_dump_of_combined_counters(
        incrs in proptest::collection::vec((0usize..6, any::<u32>(), any::<u32>()), 0..20),
    ) {
        // Two "servers" (A, B) each count some events; a third registry
        // C counts A's and B's events together. The fleet merge of A's
        // and B's dumps must equal C's dump exactly — the property that
        // makes `fleet_scrape`'s time series additive.
        let names = ["a.q", "a.e", "b.hits", "b.misses", "srv.x", "srv.y"];
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        let c = MetricsRegistry::new();
        for (ni, va, vb) in incrs {
            let name = names[ni];
            a.counter(name).add(va as u64);
            b.counter(name).add(vb as u64);
            let combined = c.counter(name);
            combined.add(va as u64);
            combined.add(vb as u64);
        }
        let merged = MetricsDump::merged([&a.dump(), &b.dump()]);
        prop_assert_eq!(merged, c.dump());
    }

    #[test]
    fn corrupt_payload_bytes_never_panic(frame in arb_frame(), pos in 0usize..64, bit in 0u8..8) {
        let mut bytes = frame.encode(3);
        if bytes.len() > HEADER_BYTES {
            let idx = HEADER_BYTES + pos % (bytes.len() - HEADER_BYTES);
            bytes[idx] ^= 1 << bit;
            // Any outcome is fine except a panic: the flip may still
            // parse (a changed id), fail typed, or look truncated.
            let _ = decode(&bytes, &Limits::default());
        }
    }

    // ---- the datagram read path. A UDP server decodes raw
    // internet-facing bytes with `decode_datagram`; whatever arrives —
    // truncated, bit-flipped, oversized, pure noise — the only legal
    // outcomes are a decoded frame, a typed fault, or a silent drop.
    // Never a panic.

    #[test]
    fn well_formed_datagrams_round_trip(frame in arb_frame(), id in any::<u64>()) {
        let bytes = frame.encode(id);
        match decode_datagram(&bytes, &Limits::default()) {
            Ok((got_id, got)) => {
                prop_assert_eq!(got_id, id);
                prop_assert_eq!(got, frame);
            }
            other => prop_assert!(false, "well-formed datagram refused: {other:?}"),
        }
    }

    #[test]
    fn truncated_datagrams_never_panic(frame in arb_frame(), keep in 0usize..96) {
        // Cut anywhere, header included: a short datagram is either a
        // silent drop (unattributable) or a typed fault, never a panic
        // and never a bogus success (the payload length check catches
        // every mid-payload cut).
        let bytes = frame.encode(11);
        let cut = keep % bytes.len();
        match decode_datagram(&bytes[..cut], &Limits::default()) {
            Err(_) => {}
            Ok((got_id, got)) => prop_assert!(
                false,
                "truncated datagram ({cut} of {} bytes) decoded as id {got_id} {got:?}",
                bytes.len()
            ),
        }
    }

    #[test]
    fn bit_flipped_datagrams_never_panic(
        frame in arb_frame(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = frame.encode(7);
        let idx = pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        // A header flip may turn the datagram unattributable (Drop), a
        // payload flip may still parse or fail typed — all fine.
        let _ = decode_datagram(&bytes, &Limits::default());
    }

    #[test]
    fn random_noise_datagrams_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Noise essentially never carries the magic, so it must be
        // dropped silently — a reply here would make the server a
        // reflection amplifier for spoofed sources.
        if !bytes.starts_with(&0x694E_614Eu32.to_be_bytes()) {
            match decode_datagram(&bytes, &Limits::default()) {
                Err(DatagramError::Drop(_)) => {}
                other => prop_assert!(false, "noise not dropped: {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_datagrams_fault_typed_with_the_senders_id(
        id in any::<u64>(),
        extra in 1usize..64,
    ) {
        // A frame whose payload exceeds the receiver's limit is
        // attributable (magic and version decoded), so the sender gets
        // a typed FrameTooLarge carrying its own request id back.
        let limits = Limits { max_frame_bytes: 64, max_batch: 1024 };
        let frame = Frame::QueryBatch {
            shard: ShardId(0),
            pairs: vec![(Ipv4(1), Ipv4(2)); 8 + extra],
        };
        let bytes = frame.encode(id);
        prop_assert!(bytes.len() - HEADER_BYTES > 64);
        match decode_datagram(&bytes, &limits) {
            Err(DatagramError::Fault { request_id, fault }) => {
                prop_assert_eq!(request_id, id);
                prop_assert_eq!(fault.code, ErrorCode::FrameTooLarge);
            }
            other => prop_assert!(false, "want typed fault, got {other:?}"),
        }
    }

    #[test]
    fn ids_with_the_reserved_bit_set_still_round_trip(low in any::<u64>()) {
        // Bit 63 is reserved for the tracing opt-in, but the codec
        // itself is transparent to it: an id with the bit set must
        // survive encode → decode unchanged on both transports (the
        // server echoes it, the trace semantics live above the codec).
        let id = low | TRACE_FLAG;
        let bytes = Frame::Ping.encode(id);
        let (stream_id, _) = decode(&bytes, &Limits::default()).unwrap().unwrap();
        prop_assert_eq!(stream_id, id);
        let (dgram_id, frame) = decode_datagram(&bytes, &Limits::default()).unwrap();
        prop_assert_eq!(dgram_id, id);
        prop_assert_eq!(frame, Frame::Ping);
    }
}

/// The reply-size rule's arithmetic, pinned: the cap is the frame
/// limit plus header room, but never beyond what one UDP datagram can
/// physically carry.
#[test]
fn datagram_cap_is_clamped_to_the_udp_payload_maximum() {
    let small = Limits {
        max_frame_bytes: 1024,
        max_batch: 16,
    };
    assert_eq!(datagram_cap(&small), 1024 + HEADER_BYTES);
    let huge = Limits {
        max_frame_bytes: 32 << 20,
        max_batch: 16,
    };
    assert_eq!(datagram_cap(&huge), inano_net::MAX_UDP_PAYLOAD);
}
